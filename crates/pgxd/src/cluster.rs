//! Cluster construction and SPMD execution.

use crate::checker;
use crate::comm::CommManager;
use crate::fault::{
    ClusterBarrier, FaultInjector, FaultPlan, InjectedFailure, RunError, RunErrorKind,
};
use crate::health::{HealthConfig, HealthMonitor, HealthReport};
use crate::machine::MachineCtx;
use crate::metrics::{CommStats, CommSummary, MetricsRegistry, MetricsSnapshot, StepReport};
use crate::net::NetworkModel;
use crate::sync::Mutex;
use crate::task::TaskManager;
use crate::trace::{TraceCollector, TraceConfig, TraceLog};
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of simulated machines (the paper's "processors").
    pub machines: usize,
    /// Worker threads per machine (the paper uses 32 on real hardware;
    /// scale to your host).
    pub workers_per_machine: usize,
    /// Data-manager read/request buffer size in bytes (§IV-B: 256 KiB).
    pub buffer_bytes: usize,
    /// Network cost model for modeled wire time.
    pub net: NetworkModel,
    /// Structured-tracing configuration (off by default; see
    /// [`crate::trace`]).
    pub trace: TraceConfig,
    /// Fault-injection plan (off by default; see [`crate::fault`]).
    pub fault: FaultPlan,
    /// In-flight health monitoring (off by default; see [`crate::health`]).
    /// The metrics registry itself is always on regardless.
    pub health: HealthConfig,
}

impl ClusterConfig {
    /// A config with `machines` machines and defaults matching the paper
    /// (256 KiB buffers, 56 Gb/s InfiniBand model, 2 workers/machine —
    /// a laptop-friendly stand-in for the paper's 32).
    pub fn new(machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        ClusterConfig {
            machines,
            workers_per_machine: 2,
            buffer_bytes: crate::DEFAULT_BUFFER_BYTES,
            net: NetworkModel::default(),
            trace: TraceConfig::disabled(),
            fault: FaultPlan::disabled(),
            health: HealthConfig::disabled(),
        }
    }

    /// Sets the worker thread count per machine.
    pub fn workers_per_machine(mut self, workers: usize) -> Self {
        self.workers_per_machine = workers.max(1);
        self
    }

    /// Sets the data-manager buffer size in bytes.
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = bytes.max(1);
        self
    }

    /// Sets the network cost model.
    pub fn network(mut self, net: NetworkModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the tracing configuration.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the fault-injection plan.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the in-flight health-monitor configuration.
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }
}

/// Results of one cluster run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-machine return values, indexed by machine id.
    pub results: Vec<R>,
    /// Cluster-wide communication totals for the run.
    pub comm: CommSummary,
    /// Per-machine step timings.
    pub steps: StepReport,
    /// Wall time from first machine start to last machine finish.
    pub wall_time: Duration,
    /// The merged event trace, when the run's [`TraceConfig`] enabled it.
    pub trace: Option<TraceLog>,
    /// Final snapshot of the run's always-on metrics registry — the
    /// single source of truth the comm/exchange/step numbers above are
    /// derived from, exportable via
    /// [`MetricsSnapshot::to_prometheus_text`] /
    /// [`MetricsSnapshot::to_json`].
    pub metrics: MetricsSnapshot,
    /// The health monitor's verdicts, when the run's [`HealthConfig`]
    /// enabled it.
    pub health: Option<HealthReport>,
    /// Bytes addressed to each machine, indexed by destination — the
    /// per-receiver skew view behind
    /// [`CommSummary::max_recv_bytes`](crate::metrics::CommSummary).
    pub per_dst_bytes: Vec<u64>,
}

/// A simulated cluster: spawns one OS thread per machine and runs SPMD
/// closures on it. Reusable — each [`Cluster::run`] builds a fresh fabric
/// so runs never share state.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// A cluster with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Like [`Cluster::run`], but *moves* one input shard into each
    /// machine instead of making the closure clone from shared state —
    /// the natural shape for "each machine owns its data" workloads.
    ///
    /// `inputs.len()` must equal the machine count.
    pub fn run_partitioned<I, R, F>(&self, inputs: Vec<I>, f: F) -> RunReport<R>
    where
        I: Send,
        R: Send,
        F: Fn(&mut MachineCtx, I) -> R + Sync,
    {
        assert_eq!(
            inputs.len(),
            self.config.machines,
            "need exactly one input shard per machine"
        );
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let slots_ref = &slots;
        let f = &f;
        self.run(move |ctx| {
            let input = slots_ref[ctx.id()]
                .lock()
                .take()
                .expect("input shard taken twice");
            f(ctx, input)
        })
    }

    /// Runs `f` once per machine (SPMD) and collects results and metrics.
    ///
    /// # Panics
    /// Propagates any machine panic after all machines stop: string
    /// payloads re-panic as `machine thread panicked: {msg}`, typed
    /// payloads (`std::panic::panic_any`) propagate intact via
    /// `resume_unwind`, and injected failures (fault-plan kills and step
    /// timeouts) re-panic with their description. Use
    /// [`Cluster::try_run`] to receive failures as values instead.
    // analyze: allow(panic-surface): `run` is the panicking entry point by
    // contract; `try_run` is the structured alternative.
    pub fn run<R, F>(&self, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut MachineCtx) -> R + Sync,
    {
        match self.run_inner(f) {
            Ok(report) => report,
            Err(failed) => {
                let payload = failed.primary.payload;
                if let Some(injected) = payload.downcast_ref::<InjectedFailure>() {
                    panic!("machine thread panicked: {injected}");
                }
                // Re-panic with the machine's own message (the payload of
                // a joined panic is opaque otherwise), so cluster tests
                // can match on the original diagnostic. Typed payloads
                // (std::panic::panic_any) propagate intact.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned());
                match msg {
                    Some(msg) => panic!("machine thread panicked: {msg}"),
                    None => std::panic::resume_unwind(payload),
                }
            }
        }
    }

    /// Like [`Cluster::run`], but converts machine failures — panics,
    /// fault-plan kills, step timeouts — into a structured [`RunError`]
    /// instead of panicking. The first failing machine (in machine order,
    /// skipping sympathetic peer aborts) is reported as primary; the
    /// protocol checker's leftover ledger state rides along as
    /// [`RunError::residual`] so tests can assert what a dead machine
    /// stranded.
    pub fn try_run<R, F>(&self, f: F) -> Result<RunReport<R>, RunError>
    where
        R: Send,
        F: Fn(&mut MachineCtx) -> R + Sync,
    {
        self.run_inner(f).map_err(|failed| {
            let machine = failed.primary.machine;
            let payload = &failed.primary.payload;
            let (kind, message) = match payload.downcast_ref::<InjectedFailure>() {
                Some(injected @ InjectedFailure::Kill { .. }) => {
                    (RunErrorKind::InjectedKill, injected.to_string())
                }
                Some(injected @ InjectedFailure::Timeout { .. }) => {
                    (RunErrorKind::StepTimeout, injected.to_string())
                }
                Some(injected @ InjectedFailure::PeerAborted) => {
                    // Only possible if *every* failure was sympathetic —
                    // the primary cause exited without a payload.
                    (RunErrorKind::MachinePanic, injected.to_string())
                }
                None => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    (RunErrorKind::MachinePanic, msg)
                }
            };
            RunError {
                kind,
                machine: Some(machine),
                message,
                peer_aborts: failed.peer_aborts,
                residual: failed.residual,
                health: failed.health,
            }
        })
    }

    /// The shared engine of [`run`](Cluster::run) and
    /// [`try_run`](Cluster::try_run): spawns the machines, catches each
    /// machine's unwind so the *first* failure aborts the run (instead of
    /// the scope's opaque "a scoped thread panicked"), and classifies the
    /// surviving wreckage.
    fn run_inner<R, F>(&self, f: F) -> Result<RunReport<R>, FailedRun>
    where
        R: Send,
        F: Fn(&mut MachineCtx) -> R + Sync,
    {
        let p = self.config.machines;
        // ClusterConfig's fields are pub, so a struct-literal config can
        // bypass the machines > 0 assert in ClusterConfig::new.
        assert!(p > 0, "need at least one machine");
        let plan = self.config.fault;
        let stats = Arc::new(CommStats::new(p, self.config.net));
        // The always-on metrics plane: the registry shares the comm/
        // exchange cells (no second hot-path fetch_add) and everything
        // else registers into it as the machines come up.
        let registry = Arc::new(MetricsRegistry::new());
        stats.register_into(&registry);
        // The barrier doubles as the run's control plane: abort flag and
        // (with an armed plan) the per-step timeout.
        let barrier = Arc::new(ClusterBarrier::new(
            p,
            if plan.enabled { plan.step_timeout } else { None },
        ));
        let injector = plan
            .enabled
            .then(|| Arc::new(FaultInjector::new(plan, p, self.config.net, barrier.clone())));
        if let Some(inj) = &injector {
            inj.register_metrics(&registry);
        }
        // The optional in-flight sampler over the registry, plus its
        // interval watchdog (which catches stalls nothing else is awake
        // to report).
        let monitor = self.config.health.enabled.then(|| {
            Arc::new(HealthMonitor::new(
                self.config.health,
                p,
                registry.clone(),
                stats.clone(),
            ))
        });
        let watchdog = monitor.as_ref().map(|m| {
            let m = m.clone();
            crate::sync::thread::spawn(move || m.watchdog_loop())
        });
        let comms = CommManager::fabric_with_faults(p, stats.clone(), injector.clone());
        let fabric_checker = comms[0].checker().clone();
        // Lane 0 is the machine's mainline thread; 1.. its worker/send
        // lanes. The collector is the shared epoch for all machines.
        let collector = self.config.trace.enabled.then(|| {
            TraceCollector::new(p, self.config.workers_per_machine + 1, self.config.trace)
        });
        let start = Instant::now();

        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut timers = vec![Vec::new(); p];
        let mut failures: Vec<MachineFailure> = Vec::new();
        {
            let f = &f;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p);
                for comm in comms {
                    let machine_id = comm.id();
                    let barrier = barrier.clone();
                    let checker = comm.checker().clone();
                    let stats = stats.clone();
                    let workers = self.config.workers_per_machine;
                    let buffer_bytes = self.config.buffer_bytes;
                    let injector = injector.clone();
                    let trace = collector.as_ref().map(|c| c.machine(machine_id));
                    let registry = registry.clone();
                    let monitor = monitor.clone();
                    handles.push(scope.spawn(move || {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            let mut ctx = MachineCtx::new(
                                comm,
                                TaskManager::with_fault(workers, machine_id, injector),
                                barrier.clone(),
                                buffer_bytes,
                                stats,
                                trace,
                                registry,
                                monitor,
                            );
                            let r = f(&mut ctx);
                            let timer = ctx.take_timer();
                            (r, timer)
                        }));
                        if outcome.is_err() {
                            // First failure wins the race to abort: every
                            // peer blocked at a barrier or a receive
                            // unwinds promptly, and the quiescence checks
                            // stand down (an aborted run legitimately
                            // strands packets and chunk custody).
                            checker.set_aborted();
                            barrier.abort();
                        }
                        (machine_id, outcome)
                    }));
                }
                for h in handles {
                    // The machine body is fully caught above; a panic out
                    // of the wrapper itself is a runtime bug.
                    let (id, outcome) = h.join().expect("machine wrapper panicked");
                    match outcome {
                        Ok((r, timer)) => {
                            results[id] = Some(r);
                            timers[id] = timer.steps().to_vec();
                        }
                        Err(payload) => failures.push(MachineFailure {
                            machine: id,
                            payload,
                        }),
                    }
                }
            });
        }

        // Stop the watchdog before reporting (success or failure), so
        // the final sample sees the complete run and no monitor thread
        // outlives it.
        if let Some(m) = &monitor {
            m.request_shutdown();
        }
        if let Some(h) = watchdog {
            h.join().expect("health watchdog panicked");
        }
        let health = monitor.map(|m| m.report());

        if !failures.is_empty() {
            let is_peer_abort = |fail: &MachineFailure| {
                matches!(
                    fail.payload.downcast_ref::<InjectedFailure>(),
                    Some(InjectedFailure::PeerAborted)
                )
            };
            let peer_aborts = failures.iter().filter(|fl| is_peer_abort(fl)).count();
            // Primary = first real failure in machine order; sympathetic
            // aborts only ever lead if nothing else unwound with a payload.
            let idx = failures
                .iter()
                .position(|fl| !is_peer_abort(fl))
                .unwrap_or(0);
            let primary = failures.swap_remove(idx);
            let residual = checker::ENABLED.then(|| fabric_checker.residual());
            return Err(FailedRun {
                primary,
                peer_aborts,
                residual,
                health,
            });
        }

        // Every machine has exited and dropped its context: any packet
        // still unconsumed or chunk still checked out of a pool is a
        // protocol bug the run masked. No-op in release builds without
        // the `checker` feature.
        if checker::ENABLED {
            fabric_checker.check_quiescent("fabric teardown", None);
        }

        Ok(RunReport {
            results: results.into_iter().map(|r| r.expect("missing result")).collect(),
            comm: stats.summary(),
            steps: StepReport {
                per_machine: timers,
            },
            wall_time: start.elapsed(),
            trace: collector.map(|c| c.collect()),
            metrics: registry.snapshot(),
            health,
            per_dst_bytes: stats.per_dst_snapshot(),
        })
    }
}

/// One machine's caught unwind.
struct MachineFailure {
    machine: usize,
    payload: Box<dyn Any + Send>,
}

/// Everything [`Cluster::run_inner`] knows about a failed run.
struct FailedRun {
    primary: MachineFailure,
    peer_aborts: usize,
    residual: Option<crate::checker::ResidualReport>,
    health: Option<HealthReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_closure_sees_identities() {
        let cluster = Cluster::new(ClusterConfig::new(5));
        let report = cluster.run(|ctx| (ctx.id(), ctx.num_machines(), ctx.is_master()));
        for (i, &(id, p, master)) in report.results.iter().enumerate() {
            assert_eq!(id, i);
            assert_eq!(p, 5);
            assert_eq!(master, i == 0);
        }
    }

    #[test]
    fn gather_and_broadcast_roundtrip() {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let report = cluster.run(|ctx| {
            let gathered = ctx.gather_to_master(vec![ctx.id() as u64 * 10]);
            let splitters = if ctx.is_master() {
                let all: Vec<u64> = gathered.unwrap().concat();
                Some(all)
            } else {
                None
            };
            ctx.broadcast_from_master(splitters)
        });
        for r in &report.results {
            assert_eq!(*r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn run_partitioned_moves_inputs() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let inputs: Vec<Vec<u64>> = (0..3).map(|m| vec![m as u64; m + 1]).collect();
        let report = cluster.run_partitioned(inputs, |ctx, shard| {
            assert_eq!(shard.len(), ctx.id() + 1);
            shard.iter().sum::<u64>()
        });
        assert_eq!(report.results, vec![0, 2, 6]);
    }

    #[test]
    #[should_panic(expected = "one input shard per machine")]
    fn run_partitioned_rejects_wrong_shard_count() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let _ = cluster.run_partitioned(vec![1u8], |_, _| ());
    }

    #[test]
    fn broadcast_from_arbitrary_root() {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let report = cluster.run(|ctx| {
            let first = ctx.broadcast_from(2, (ctx.id() == 2).then(|| vec![7u8, 8]));
            let second = ctx.broadcast_from(3, (ctx.id() == 3).then(|| vec![9u8]));
            (first, second)
        });
        for (first, second) in &report.results {
            assert_eq!(first, &vec![7, 8]);
            assert_eq!(second, &vec![9]);
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let cluster = Cluster::new(ClusterConfig::new(3));
        let report = cluster.run(|ctx| {
            let parts: Vec<Vec<u64>> = (0..3)
                .map(|dst| vec![(ctx.id() * 100 + dst) as u64])
                .collect();
            ctx.all_to_all(parts)
        });
        // Machine j receives from src i the value i*100 + j.
        for (j, rec) in report.results.iter().enumerate() {
            for (i, v) in rec.iter().enumerate() {
                assert_eq!(v[0], (i * 100 + j) as u64);
            }
        }
    }

    #[test]
    fn all_gather_everyone_sees_all() {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let report = cluster.run(|ctx| ctx.all_gather(vec![ctx.id() as u32]));
        for rec in &report.results {
            let flat: Vec<u32> = rec.concat();
            assert_eq!(flat, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn exchange_by_offsets_redistributes() {
        // Each machine holds 0..30 + id*1000 marker-free values and sends
        // thirds to machines 0,1,2. Receivers must see source-ordered runs.
        let cluster = Cluster::new(ClusterConfig::new(3));
        let report = cluster.run(|ctx| {
            let id = ctx.id() as u64;
            let data: Vec<u64> = (0..30).map(|i| id * 100 + i).collect();
            let offsets = vec![0, 10, 20, 30];
            ctx.exchange_by_offsets(&data, &offsets)
        });
        for (m, (out, bounds)) in report.results.iter().enumerate() {
            assert_eq!(bounds, &vec![0, 10, 20, 30]);
            assert_eq!(out.len(), 30);
            for src in 0..3 {
                let run = &out[bounds[src]..bounds[src + 1]];
                let expect: Vec<u64> =
                    (0..10).map(|i| src as u64 * 100 + m as u64 * 10 + i).collect();
                assert_eq!(run, expect.as_slice(), "machine {m} run from {src}");
            }
        }
    }

    #[test]
    fn exchange_with_empty_ranges() {
        // Machine 0 sends everything to machine 1; others send nothing.
        let cluster = Cluster::new(ClusterConfig::new(3));
        let report = cluster.run(|ctx| {
            let data: Vec<u64> = if ctx.id() == 0 { (0..100).collect() } else { vec![] };
            let offsets = if ctx.id() == 0 {
                vec![0, 0, 100, 100]
            } else {
                vec![0, 0, 0, 0]
            };
            ctx.exchange_by_offsets(&data, &offsets)
        });
        assert!(report.results[0].0.is_empty());
        assert_eq!(report.results[1].0, (0..100).collect::<Vec<u64>>());
        assert!(report.results[2].0.is_empty());
    }

    #[test]
    fn exchange_chunks_through_tiny_buffers() {
        // Force many chunk flushes: 64-byte buffer = 8 u64 per chunk.
        let cluster = Cluster::new(ClusterConfig::new(2).buffer_bytes(64));
        let report = cluster.run(|ctx| {
            let id = ctx.id() as u64;
            let data: Vec<u64> = (0..1000).map(|i| id * 10_000 + i).collect();
            // Both machines keep their low half and send the high half.
            let offsets = vec![0, 500, 1000];
            ctx.exchange_by_offsets(&data, &offsets)
        });
        let (out0, b0) = &report.results[0];
        assert_eq!(b0, &vec![0, 500, 1000]);
        assert_eq!(out0[..500], (0..500).collect::<Vec<u64>>()[..]);
        assert_eq!(out0[500..], (10_000..10_500).collect::<Vec<u64>>()[..]);
        // Chunking must not change totals but must raise message counts.
        assert!(report.comm.messages_sent > 100);
    }

    #[test]
    fn single_machine_cluster_works() {
        let cluster = Cluster::new(ClusterConfig::new(1));
        let report = cluster.run(|ctx| {
            let g = ctx.gather_to_master(vec![7u8]).unwrap();
            let b = ctx.broadcast_from_master(Some(vec![1u8]));
            let a = ctx.all_to_all(vec![vec![9u8]]);
            let (out, bounds) = ctx.exchange_by_offsets(&[1u64, 2, 3], &[0, 3]);
            (g, b, a, out, bounds)
        });
        let (g, b, a, out, bounds) = &report.results[0];
        assert_eq!(g[0], vec![7]);
        assert_eq!(b, &vec![1]);
        assert_eq!(a[0], vec![9]);
        assert_eq!(out, &vec![1, 2, 3]);
        assert_eq!(bounds, &vec![0, 3]);
        assert_eq!(report.comm.bytes_sent, 0);
    }

    #[test]
    fn step_timers_collected() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let report = cluster.run(|ctx| {
            ctx.step("compute", |_| {
                std::thread::sleep(Duration::from_millis(5));
            });
        });
        assert!(report.steps.max_across_machines("compute") >= Duration::from_millis(5));
        assert_eq!(report.steps.step_names(), vec!["compute"]);
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        // A fast machine racing ahead to collective #2 must not have its
        // packets consumed by a slow machine still in collective #1.
        let cluster = Cluster::new(ClusterConfig::new(3));
        let report = cluster.run(|ctx| {
            if ctx.id() == 2 {
                std::thread::sleep(Duration::from_millis(10));
            }
            let first = ctx.all_gather(vec![ctx.id() as u64]);
            let second = ctx.all_gather(vec![ctx.id() as u64 + 100]);
            (first, second)
        });
        for (first, second) in &report.results {
            assert_eq!(first.concat(), vec![0, 1, 2]);
            assert_eq!(second.concat(), vec![100, 101, 102]);
        }
    }

    #[test]
    fn disabled_tracing_yields_no_log() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let report = cluster.run(|ctx| {
            ctx.step("noop", |_| {});
            ctx.barrier();
        });
        assert!(report.trace.is_none());
    }

    #[test]
    fn enabled_tracing_captures_steps_barriers_and_exchange() {
        let cluster =
            Cluster::new(ClusterConfig::new(3).trace(TraceConfig::enabled().ring_capacity(4096)));
        let report = cluster.run(|ctx| {
            ctx.step("scatter", |ctx| {
                let id = ctx.id() as u64;
                let data: Vec<u64> = (0..300).map(|i| id * 1000 + i).collect();
                let offsets = vec![0, 100, 200, 300];
                ctx.exchange_by_offsets(&data, &offsets)
            });
            ctx.barrier();
        });
        let log = report.trace.expect("tracing was enabled");
        assert_eq!(log.machines, 3);
        assert_eq!(log.dropped, 0, "4096-slot rings must not overflow here");
        use crate::trace::EventKind;
        for m in 0..3u32 {
            assert!(
                log.events_of_kind(EventKind::Step).any(|e| e.machine == m),
                "machine {m} has a step span"
            );
            assert!(
                log.events_of_kind(EventKind::Barrier).any(|e| e.machine == m),
                "machine {m} has a barrier span"
            );
            assert!(
                log.events_of_kind(EventKind::ChunkSend).any(|e| e.machine == m),
                "machine {m} sent chunks"
            );
            assert!(
                log.events_of_kind(EventKind::ChunkRecv).any(|e| e.machine == m),
                "machine {m} received chunks"
            );
            assert!(
                log.events_of_kind(EventKind::ChunkPlace).any(|e| e.machine == m),
                "machine {m} placed chunks"
            );
        }
        assert_eq!(log.step_gantt().len(), 3);
        assert!(log.step_gantt().iter().all(|r| r.name == "scatter"));
        // Every machine crossed the same barriers; skew is well-defined.
        assert!(!log.barrier_skews().is_empty());
        assert!(!log.per_destination_byte_timelines().is_empty());
        // The exported JSON is non-trivial.
        let json = log.to_chrome_json();
        assert!(json.contains("\"name\":\"scatter\""));
    }

    #[test]
    fn comm_bytes_scale_with_payload() {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let small = cluster.run(|ctx| {
            let _ = ctx.all_gather(vec![0u64; 10]);
        });
        let big = cluster.run(|ctx| {
            let _ = ctx.all_gather(vec![0u64; 10_000]);
        });
        assert!(big.comm.bytes_sent > 100 * small.comm.bytes_sent);
    }
}
