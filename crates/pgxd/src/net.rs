//! Network cost model for the simulated fabric.
//!
//! The paper's cluster (Table I) uses Mellanox Connect-IB at 56 Gb/s per
//! port. Our machines exchange data through in-process channels, so the
//! *observed* quantity is bytes moved; this model converts bytes into the
//! wire time that fabric would have charged, which the experiment harness
//! reports as "modeled communication time" next to measured wall time.

use std::time::Duration;

/// Latency + bandwidth model: `time(bytes) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency charged per packet.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// The Table I fabric: 56 Gb/s InfiniBand, ~1.5 µs port-to-port latency
    /// (typical for the SX6512 switch generation).
    pub fn infiniband_56g() -> Self {
        NetworkModel {
            latency: Duration::from_nanos(1_500),
            bandwidth_bytes_per_sec: 56.0e9 / 8.0,
        }
    }

    /// A 10 GbE-class commodity network, for sensitivity studies.
    pub fn ethernet_10g() -> Self {
        NetworkModel {
            latency: Duration::from_micros(20),
            bandwidth_bytes_per_sec: 10.0e9 / 8.0,
        }
    }

    /// Wire time for one packet of `bytes` payload.
    pub fn packet_time(&self, bytes: usize) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec);
        self.latency + transfer
    }

    /// Wire time for `packets` packets totalling `bytes`, assuming they
    /// stream back-to-back over one port (latency charged per packet,
    /// bandwidth shared).
    pub fn stream_time(&self, packets: u64, bytes: u64) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec);
        self.latency * (packets as u32) + transfer
    }

    /// [`packet_time`](NetworkModel::packet_time) scaled by a
    /// deterministic jitter factor in `[0.5, 1.5)` derived from `salt`
    /// (hashed with [`crate::fault::mix64`]). The fault plane uses this to
    /// make injected chunk delays track the modeled wire time of the
    /// chunk — big chunks jitter by more — while staying replayable from
    /// a seed.
    pub fn jittered_packet_time(&self, bytes: usize, salt: u64) -> Duration {
        let factor = 0.5 + (crate::fault::mix64(salt) % 1024) as f64 / 1024.0;
        self.packet_time(bytes).mul_f64(factor)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::infiniband_56g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_time_scales_with_bytes() {
        let net = NetworkModel::infiniband_56g();
        let small = net.packet_time(1024);
        let big = net.packet_time(1024 * 1024);
        assert!(big > small);
        // 1 MiB at 7 GB/s is ~150 µs.
        assert!(big > Duration::from_micros(100));
        assert!(big < Duration::from_micros(400));
    }

    #[test]
    fn zero_bytes_still_pays_latency() {
        let net = NetworkModel::infiniband_56g();
        assert_eq!(net.packet_time(0), net.latency);
    }

    #[test]
    fn stream_time_charges_per_packet_latency() {
        let net = NetworkModel::infiniband_56g();
        let one = net.stream_time(1, 1 << 20);
        let many = net.stream_time(100, 1 << 20);
        assert!(many > one);
        assert_eq!(many - one, net.latency * 99);
    }

    #[test]
    fn jittered_packet_time_is_deterministic_and_bounded() {
        let net = NetworkModel::infiniband_56g();
        for salt in 0..256u64 {
            let base = net.packet_time(1 << 20);
            let jittered = net.jittered_packet_time(1 << 20, salt);
            assert_eq!(jittered, net.jittered_packet_time(1 << 20, salt));
            assert!(jittered >= base.mul_f64(0.5));
            assert!(jittered < base.mul_f64(1.5));
        }
        // Different salts actually spread.
        assert!(
            net.jittered_packet_time(1 << 20, 1) != net.jittered_packet_time(1 << 20, 2)
                || net.jittered_packet_time(1 << 20, 1) != net.jittered_packet_time(1 << 20, 3)
        );
    }

    #[test]
    fn ethernet_slower_than_ib() {
        let ib = NetworkModel::infiniband_56g();
        let eth = NetworkModel::ethernet_10g();
        assert!(eth.packet_time(1 << 20) > ib.packet_time(1 << 20));
    }
}
