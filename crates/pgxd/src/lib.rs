//! An in-process distributed-runtime simulator modelled on PGX.D (§III of
//! the paper).
//!
//! PGX.D is Oracle's proprietary distributed graph-processing engine; this
//! crate rebuilds the three managers the paper describes, faithfully
//! enough that the distributed sorting algorithm on top exercises the same
//! mechanisms the paper measures:
//!
//! - **Task manager** ([`task::TaskManager`]) — each machine owns a set of
//!   worker threads that grab tasks from a shared list and execute them,
//!   exactly the §III description of the parallel-step execution model.
//! - **Data manager** ([`buffer::RequestBuffer`], [`csr::Csr`]) — outgoing
//!   remote writes are buffered per destination and flushed when the
//!   buffer reaches its maximum size (256 KiB by default, the value PGX.D
//!   tuned empirically) or when the step ends; graph data is stored in
//!   Compressed Sparse Row form.
//! - **Communication manager** ([`comm`]) — point-to-point message
//!   delivery between machines with byte/message accounting and a
//!   [`net::NetworkModel`] that converts observed bytes into modeled wire
//!   time for the 56 Gb/s InfiniBand fabric of Table I.
//!
//! A [`cluster::Cluster`] runs an SPMD closure on one OS thread per
//! simulated machine; [`machine::MachineCtx`] gives each machine its
//! identity, its managers, collectives (barrier / gather / broadcast /
//! all-to-all / offset-addressed asynchronous exchange), and a per-step
//! wall-clock timer ([`metrics::StepTimer`]) so experiments can report the
//! Fig. 7 step breakdown.
//!
//! # Verification layers
//!
//! The runtime's concurrency invariants are enforced by tooling, not
//! convention (see `DESIGN.md` § *Verification & analysis*):
//!
//! - [`sync`] — all runtime synchronization goes through one shim, so
//!   `RUSTFLAGS="--cfg loom"` swaps in [loom](https://docs.rs/loom) and the
//!   `loom_pool`/`loom_exchange` tests model-check the chunk pool and the
//!   overlapped exchange across every interleaving.
//! - [`checker`] — a debug-mode protocol checker keeps a per-fabric ledger
//!   of sends, receives, and pool chunk custody; barriers and fabric
//!   teardown turn undelivered packets, leaked/double-released chunks, and
//!   overlapping §IV-C write-offset ranges into deterministic panics.
//! - [`trace`] — an opt-in structured event layer: lock-free per-machine
//!   ring buffers of timestamped spans/instants at every runtime edge
//!   (steps, barriers, tasks, chunk traffic, pool hits, checker verdicts),
//!   merged on a unified clock and exported as Chrome `trace_event` JSON
//!   (Perfetto / `chrome://tracing`) plus derived views. Off by default;
//!   disabled runs pay ~one branch per event site.
//! - [`metrics`] + [`health`] — the always-on metrics plane: a lock-free
//!   [`metrics::MetricsRegistry`] of named counters, gauges, and
//!   log₂-bucketed histograms every runtime layer registers into
//!   (`Relaxed` statistics, invisible to loom; one `fetch_add` per
//!   event), snapshot-exportable as Prometheus text or JSON. An opt-in
//!   [`health::HealthMonitor`] samples the registry *during* the run —
//!   from step/barrier boundaries plus an interval watchdog — and turns
//!   deltas into structured verdicts (stragglers, stalled steps,
//!   pool-miss storms, per-receiver byte skew) on
//!   [`cluster::RunReport::health`] and [`fault::RunError::health`].
//! - [`fault`] — an opt-in deterministic fault-injection plane: a seeded
//!   [`fault::FaultPlan`] on [`cluster::ClusterConfig`] arms per-chunk
//!   delays/jitter, mailbox reordering, bounded drop-with-redelivery,
//!   straggler workers, step pauses, mid-step machine kills, and a
//!   per-step timeout that converts a hung run into a structured
//!   [`fault::RunError`] via [`cluster::Cluster::try_run`]. Off by
//!   default; disabled runs pay ~one branch per fault site.
//! - `cargo xtask lint` — a workspace lint walks the source and confines
//!   `unsafe` to an allowlist (`pgxd::machine`, `pgxd::pool`, `memtrack`),
//!   requires `// SAFETY:` on every unsafe block, and bans raw
//!   `std::thread::spawn`/`std::sync::Mutex` in this crate.
//!
//! # Example
//!
//! ```
//! use pgxd::cluster::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::new(4).workers_per_machine(2));
//! let report = cluster.run(|ctx| {
//!     // Every machine contributes its rank; machine 0 gathers them.
//!     let rows = ctx.gather_to_master(vec![ctx.id() as u64]);
//!     ctx.barrier();
//!     rows.map(|r| r.concat().iter().sum::<u64>())
//! });
//! assert_eq!(report.results[0], Some(6));
//! ```

pub mod buffer;
pub mod checker;
pub mod cluster;
pub mod comm;
pub mod csr;
pub mod fault;
pub mod health;
pub mod machine;
pub mod metrics;
pub mod net;
pub mod partition;
pub mod pool;
pub mod sync;
pub mod task;
pub mod trace;

pub use checker::ResidualReport;
pub use cluster::{Cluster, ClusterConfig, RunReport};
pub use fault::{FaultPlan, RunError, RunErrorKind};
pub use health::{HealthConfig, HealthReport, HealthVerdict};
pub use machine::MachineCtx;
pub use metrics::{
    CommSummary, Counter, ExchangeSummary, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    StepReport,
};
pub use pool::ChunkPool;
pub use net::NetworkModel;
pub use trace::{TraceConfig, TraceLog};

/// The read/request buffer size PGX.D uses (§IV-B): 256 KiB.
pub const DEFAULT_BUFFER_BYTES: usize = 256 * 1024;
