//! Compressed Sparse Row graph storage — the data manager's native graph
//! representation (§III).
//!
//! The sorting library is graph-flavoured in the paper's evaluation
//! (Fig. 8 sorts Twitter graph data); the harness generates R-MAT graphs,
//! stores them in CSR per machine, and sorts per-vertex keys (degrees,
//! destination ids) extracted from the CSR.

/// An immutable CSR graph (or graph partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx` with v's out-edges.
    row_ptr: Vec<usize>,
    /// Edge destinations, grouped by source vertex.
    col_idx: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list over `num_vertices` vertices.
    /// Edges may arrive in any order; within a vertex they are stored in
    /// arrival order.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(src, _) in edges {
            degree[src as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(num_vertices + 1);
        row_ptr.push(0);
        for v in 0..num_vertices {
            row_ptr.push(row_ptr[v] + degree[v]);
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; edges.len()];
        for &(src, dst) in edges {
            let s = src as usize;
            col_idx[cursor[s]] = dst;
            cursor[s] += 1;
        }
        Csr { row_ptr, col_idx }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// All out-degrees as a vector (a classic sort key for Fig. 8-style
    /// experiments).
    pub fn degrees(&self) -> Vec<u64> {
        (0..self.num_vertices()).map(|v| self.degree(v) as u64).collect()
    }

    /// All edge destinations (heavily duplicated on power-law graphs —
    /// the duplicate-rich key distribution the investigator targets).
    pub fn edge_dsts(&self) -> &[u32] {
        &self.col_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 3 -> 0 (vertex 2 is a sink)
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 0)])
    }

    #[test]
    fn shape_and_degrees() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degrees(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn neighbors_grouped_by_source() {
        let g = sample();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn unordered_edge_input() {
        let shuffled = Csr::from_edges(4, &[(3, 0), (0, 1), (1, 2), (0, 2)]);
        assert_eq!(shuffled.neighbors(0), &[1, 2]);
        assert_eq!(shuffled.degree(3), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = Csr::from_edges(5, &[]);
        assert_eq!(g.num_vertices(), 5);
        assert!(g.degrees().iter().all(|&d| d == 0));
    }

    #[test]
    fn edge_dsts_exposes_all_destinations() {
        let g = sample();
        let mut dsts = g.edge_dsts().to_vec();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 1, 2, 2]);
    }
}
