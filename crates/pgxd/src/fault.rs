//! Deterministic, seed-driven fault injection for the simulated cluster.
//!
//! The paper's central robustness claim (§IV) is that the asynchronous,
//! buffer-chunked exchange tolerates slow machines without idling or
//! deadlock. This module turns that claim into something a test can
//! attack on purpose: a [`FaultPlan`] rides on
//! [`ClusterConfig`](crate::cluster::ClusterConfig) (off by default, one
//! branch per site when disabled, exactly like
//! [`TraceConfig`](crate::trace::TraceConfig)) and arms the runtime's
//! existing layers with injected adversity:
//!
//! - **`CommSender`** — per-chunk send delays with deterministic jitter
//!   derived from the [`NetworkModel`]'s modeled wire time, and bounded
//!   drop-with-redelivery (a chunk's first delivery attempt is parked and
//!   re-sent behind the next chunk of its stream, or at stream end — the
//!   offset-addressed §IV-C protocol must absorb the reordering).
//! - **`CommManager`** — reordering within the mailbox: when several
//!   early arrivals are parked under one tag, the delivery order is
//!   shuffled by the seed instead of FIFO.
//! - **`TaskManager`** — straggler workers: every task pickup on a
//!   designated machine is delayed, and steps can be paused at their
//!   boundary (pause/resume) on any machine.
//! - **`Cluster`** — a machine can be killed mid-step via an injected
//!   panic, and a configurable per-step timeout converts a hung barrier
//!   or a starved receive into a structured [`RunError`] through
//!   [`Cluster::try_run`](crate::cluster::Cluster::try_run) instead of a
//!   wedged process.
//!
//! # Determinism contract
//!
//! Every injection decision is a pure function of the plan's `seed`, the
//! site (delay / drop / reorder / pause / pickup), and that site's own
//! event index — e.g. "the 7th chunk of the 2→0 stream". Per-stream chunk
//! indices are deterministic because each (src, dst) stream is produced
//! sequentially by one send task, so a failing chaos schedule replays
//! exactly from its seed. Sites whose event index depends on OS
//! scheduling (worker pickup order, the victim's Nth receive) still draw
//! the same decision *sequence* from the seed; the verdicts the chaos
//! harness asserts (sorted output, checker quiescence, structured errors)
//! are schedule-independent by design.
//!
//! # Timeout semantics
//!
//! `step_timeout` bounds every blocking wait a machine performs inside a
//! step: barrier waits and fabric receives. When it elapses, the waiter
//! marks the run aborted (so every peer unwinds promptly instead of
//! hanging), and [`Cluster::try_run`](crate::cluster::Cluster::try_run)
//! reports a [`RunErrorKind::StepTimeout`]. Without a plan, receives keep
//! the legacy two-minute protocol-bug guard and barriers never time out.

use crate::checker::ResidualReport;
use crate::comm::Tag;
use crate::net::NetworkModel;
use crate::sync::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
// Monotonic counters only (never gate control flow): plain std atomics,
// same policy as `metrics` (see `sync` module docs). The abort flag *is*
// control flow but is intentionally racy-read (a late observer just
// unwinds one poll later).
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic fault-injection plan. All probabilities are in
/// permille (0–1000) so the plan stays `Copy`/`Eq`-friendly; every
/// decision derives from `seed` (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master switch. `false` (the default) keeps every fault site at one
    /// branch of cost.
    pub enabled: bool,
    /// Seed all injection decisions derive from.
    pub seed: u64,
    /// Probability (‰) that an exchange chunk's send is delayed.
    pub chunk_delay_permille: u32,
    /// Upper bound of the uniform component of a chunk delay, in µs. The
    /// delay additionally rides on the network model's jittered wire time
    /// for the chunk ([`NetworkModel::jittered_packet_time`]).
    pub chunk_delay_max_micros: u64,
    /// Probability (‰) that a parked mailbox queue is drained out of
    /// order instead of FIFO.
    pub reorder_permille: u32,
    /// Probability (‰) that a chunk's first delivery attempt is "dropped"
    /// (parked at the sender and redelivered behind the next chunk of its
    /// stream, or at stream end).
    pub drop_permille: u32,
    /// Bound on drop-with-redelivery events per (src, dst) stream.
    pub max_drops_per_stream: u64,
    /// Machine whose workers straggle (every task pickup delayed).
    pub straggler_machine: Option<usize>,
    /// Upper bound of the per-pickup straggler delay, in µs.
    pub straggler_delay_micros: u64,
    /// Probability (‰) that a machine pauses at a step boundary.
    pub step_pause_permille: u32,
    /// Upper bound of a step-boundary pause, in µs.
    pub step_pause_micros: u64,
    /// Machine to kill via an injected panic.
    pub kill_machine: Option<usize>,
    /// Fault-point crossings (receives) on the victim before the kill
    /// fires — letting tests place the kill mid-exchange.
    pub kill_after_events: u64,
    /// Per-step timeout: bounds barrier waits and fabric receives, and
    /// converts a hung run into a structured [`RunError`] under
    /// [`Cluster::try_run`](crate::cluster::Cluster::try_run).
    pub step_timeout: Option<Duration>,
}

impl FaultPlan {
    /// The default: no fault plane at all.
    pub fn disabled() -> Self {
        FaultPlan {
            enabled: false,
            seed: 0,
            chunk_delay_permille: 0,
            chunk_delay_max_micros: 0,
            reorder_permille: 0,
            drop_permille: 0,
            max_drops_per_stream: 0,
            straggler_machine: None,
            straggler_delay_micros: 0,
            step_pause_permille: 0,
            step_pause_micros: 0,
            kill_machine: None,
            kill_after_events: 0,
            step_timeout: None,
        }
    }

    /// An armed plan with no faults configured yet; chain the builder
    /// methods below to add adversity.
    pub fn enabled(seed: u64) -> Self {
        FaultPlan {
            enabled: true,
            seed,
            ..FaultPlan::disabled()
        }
    }

    /// Preset: delayed chunks (15% of chunks, ≤ 200 µs + jittered wire
    /// time each).
    pub fn delays(seed: u64) -> Self {
        FaultPlan::enabled(seed).chunk_delay(150, 200)
    }

    /// Preset: mailbox reordering on 40% of multi-entry drains.
    pub fn reorders(seed: u64) -> Self {
        FaultPlan::enabled(seed).reorder(400)
    }

    /// Preset: bounded drop-with-redelivery on 20% of chunks.
    pub fn drops(seed: u64) -> Self {
        FaultPlan::enabled(seed).drop_chunks(200, 64)
    }

    /// Preset: one straggler machine (every task pickup ≤ 300 µs late,
    /// every step boundary pausable).
    pub fn straggler(seed: u64, machine: usize) -> Self {
        FaultPlan::enabled(seed)
            .straggle(machine, 300)
            .step_pause(500, 400)
    }

    /// Preset: everything except kills — delays, reordering, drops,
    /// a straggler on machine 0, and step pauses.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::enabled(seed)
            .chunk_delay(100, 150)
            .reorder(300)
            .drop_chunks(120, 32)
            .straggle(0, 150)
            .step_pause(250, 200)
    }

    /// Arms per-chunk send delays.
    pub fn chunk_delay(mut self, permille: u32, max_micros: u64) -> Self {
        self.chunk_delay_permille = permille.min(1000);
        self.chunk_delay_max_micros = max_micros;
        self
    }

    /// Arms mailbox reordering.
    pub fn reorder(mut self, permille: u32) -> Self {
        self.reorder_permille = permille.min(1000);
        self
    }

    /// Arms bounded drop-with-redelivery.
    pub fn drop_chunks(mut self, permille: u32, max_per_stream: u64) -> Self {
        self.drop_permille = permille.min(1000);
        self.max_drops_per_stream = max_per_stream;
        self
    }

    /// Disarms drops (keeps everything else) — the configuration the
    /// output-equivalence property test sweeps.
    pub fn without_drops(mut self) -> Self {
        self.drop_permille = 0;
        self.max_drops_per_stream = 0;
        self
    }

    /// Makes `machine`'s workers straggle on every task pickup.
    pub fn straggle(mut self, machine: usize, delay_micros: u64) -> Self {
        self.straggler_machine = Some(machine);
        self.straggler_delay_micros = delay_micros;
        self
    }

    /// Arms step-boundary pauses (pause/resume) on every machine.
    pub fn step_pause(mut self, permille: u32, max_micros: u64) -> Self {
        self.step_pause_permille = permille.min(1000);
        self.step_pause_micros = max_micros;
        self
    }

    /// Kills `machine` with an injected panic at its `after_events`-th
    /// fault-point crossing (receive).
    pub fn kill(mut self, machine: usize, after_events: u64) -> Self {
        self.kill_machine = Some(machine);
        self.kill_after_events = after_events;
        self
    }

    /// Bounds every barrier wait and fabric receive by `timeout`.
    pub fn step_timeout(mut self, timeout: Duration) -> Self {
        self.step_timeout = Some(timeout);
        self
    }

    /// `true` when any fault (not just the master switch) is armed.
    pub fn is_armed(&self) -> bool {
        self.enabled
            && (self.chunk_delay_permille > 0
                || self.reorder_permille > 0
                || self.drop_permille > 0
                || self.straggler_machine.is_some()
                || self.step_pause_permille > 0
                || self.kill_machine.is_some()
                || self.step_timeout.is_some())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

/// SplitMix64 finalizer: the one hash every injection decision derives
/// from. Public so tests can predict schedules from seeds.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Injection sites, folded into the hash so the same event index draws
/// independent decisions per site.
mod site {
    pub const DELAY: u64 = 1;
    pub const DELAY_LEN: u64 = 2;
    pub const REORDER: u64 = 3;
    pub const REORDER_PICK: u64 = 4;
    pub const DROP: u64 = 5;
    pub const PAUSE: u64 = 6;
    pub const PAUSE_LEN: u64 = 7;
    pub const PICKUP: u64 = 8;
}

fn decision(seed: u64, site: u64, stream: u64, seq: u64) -> u64 {
    mix64(seed ^ mix64(site ^ mix64(stream.wrapping_mul(0x2545f4914f6cdd1d) ^ seq)))
}

fn chance(seed: u64, site: u64, stream: u64, seq: u64, permille: u32) -> bool {
    permille > 0 && decision(seed, site, stream, seq) % 1000 < permille as u64
}

/// A chunk whose first delivery attempt was "dropped": parked at the
/// sender, re-sent behind the next chunk of its stream or at stream end.
pub(crate) struct HeldChunk {
    pub(crate) wire_bytes: usize,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// Typed panic payload for injected failures. [`Cluster::try_run`]
/// converts these into [`RunError`]s; [`Cluster::run`] re-panics with the
/// display form.
///
/// [`Cluster::try_run`]: crate::cluster::Cluster::try_run
/// [`Cluster::run`]: crate::cluster::Cluster::run
#[derive(Debug)]
pub(crate) enum InjectedFailure {
    /// The plan killed this machine.
    Kill { machine: usize },
    /// A step timeout elapsed at a barrier or a receive.
    Timeout { machine: usize, context: String },
    /// A peer failed first; this machine unwound in sympathy.
    PeerAborted,
}

impl std::fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectedFailure::Kill { machine } => {
                write!(f, "fault plan killed machine {machine}")
            }
            InjectedFailure::Timeout { machine, context } => {
                write!(f, "machine {machine}: step timeout {context}")
            }
            InjectedFailure::PeerAborted => write!(f, "peer machine failed; run aborted"),
        }
    }
}

/// Why [`Cluster::try_run`](crate::cluster::Cluster::try_run) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// A machine's SPMD closure (or the runtime under it) panicked.
    MachinePanic,
    /// The fault plan's kill fired.
    InjectedKill,
    /// The configured per-step timeout elapsed at a barrier or receive.
    StepTimeout,
}

/// A structured run failure: what failed, where, and what the protocol
/// checker's ledger still held when the surviving machines tore down.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Failure class.
    pub kind: RunErrorKind,
    /// Machine the primary failure was observed on.
    pub machine: Option<usize>,
    /// The primary failure's message (panic payload or injected-failure
    /// description).
    pub message: String,
    /// Peers that unwound in sympathy after the primary failure.
    pub peer_aborts: usize,
    /// Checker-ledger debris at teardown (in-flight packets / chunk
    /// custody the dead machine stranded). `None` in builds without the
    /// checker. A failed run legitimately strands state; the surviving
    /// teardown path reports it here instead of panicking.
    pub residual: Option<ResidualReport>,
    /// The health monitor's flight-recorder view of the run up to the
    /// failure (verdicts + last registry snapshot), when
    /// [`HealthConfig`](crate::health::HealthConfig) was enabled — the
    /// abort path is exactly where the in-flight record matters most.
    pub health: Option<crate::health::HealthReport>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            RunErrorKind::MachinePanic => "machine panic",
            RunErrorKind::InjectedKill => "injected kill",
            RunErrorKind::StepTimeout => "step timeout",
        };
        match self.machine {
            Some(m) => write!(f, "cluster run failed ({kind} on machine {m}): {}", self.message),
            None => write!(f, "cluster run failed ({kind}): {}", self.message),
        }
    }
}

impl std::error::Error for RunError {}

/// Outcome of one [`ClusterBarrier::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierWait {
    /// Everyone arrived; proceed.
    Released,
    /// A peer aborted the run; unwind.
    Aborted,
    /// This waiter's step timeout elapsed first; it has already marked
    /// the run aborted on behalf of everyone.
    TimedOut,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
}

/// An abortable, optionally timeout-bounded barrier. Replaces
/// `std::sync::Barrier` in [`Cluster`](crate::cluster::Cluster) runs so a
/// dead machine can never wedge the survivors: aborting wakes every
/// waiter, and (with a plan-configured `step_timeout`) a barrier nobody
/// completes converts into a structured failure instead of a hang.
///
/// Built on [`crate::sync`] so loom builds compile; under loom the
/// timeout degrades to a plain wait (cluster runs are not loom-modeled).
pub(crate) struct ClusterBarrier {
    n: usize,
    timeout: Option<Duration>,
    aborted: AtomicBool,
    state: Mutex<BarrierGen>,
    cv: Condvar,
}

impl ClusterBarrier {
    pub(crate) fn new(n: usize, timeout: Option<Duration>) -> Self {
        ClusterBarrier {
            n,
            timeout,
            aborted: AtomicBool::new(false),
            state: Mutex::new(BarrierGen {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `n` machines (or an abort, or the timeout).
    pub(crate) fn wait(&self) -> BarrierWait {
        let mut g = self.state.lock();
        if self.aborted.load(Ordering::Acquire) {
            return BarrierWait::Aborted;
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation = g.generation.wrapping_add(1);
            self.cv.notify_all();
            return BarrierWait::Released;
        }
        let gen = g.generation;
        // analyze: allow(determinism): wall clock only arms the abort
        // timeout; it never orders replayed events.
        let deadline = self.timeout.map(|t| Instant::now() + t);
        loop {
            if self.aborted.load(Ordering::Acquire) {
                return BarrierWait::Aborted;
            }
            if g.generation != gen {
                return BarrierWait::Released;
            }
            match deadline {
                // analyze: allow(blocking-under-lock): condvar wait on the
                // barrier's own mutex — the guard is released for the wait;
                // no other lock is held.
                None => g = self.cv.wait(g),
                Some(d) => {
                    // analyze: allow(determinism): timeout-expiry check — aborts the
                    // run, never feeds replayed ordering.
                    let now = Instant::now();
                    if now >= d {
                        // This generation can never complete: a peer died
                        // or stalled past the plan's budget. Abort the run
                        // so every machine unwinds instead of hanging.
                        self.aborted.store(true, Ordering::Release);
                        self.cv.notify_all();
                        return BarrierWait::TimedOut;
                    }
                    let (g2, _timed_out) = self.cv.wait_for(g, d - now);
                    g = g2;
                }
            }
        }
    }

    /// Marks the run aborted and wakes every barrier waiter. Idempotent.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        // Taking the lock pairs the store with any waiter that checked the
        // flag and is about to park — no lost wakeup.
        let _g = self.state.lock();
        self.cv.notify_all();
    }

    /// `true` once any machine has failed (or a timeout fired).
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

/// The armed fault plane of one cluster run: the plan plus per-site event
/// counters and the parked-chunk table. Shared (`Arc`) by every machine's
/// sender, receiver, task manager, and context.
pub struct FaultInjector {
    plan: FaultPlan,
    p: usize,
    net: NetworkModel,
    control: Arc<ClusterBarrier>,
    /// Per-(src, dst) chunk sequence numbers, `src * p + dst`.
    stream_seq: Vec<AtomicU64>,
    /// Drop-with-redelivery events consumed per (src, dst) stream.
    drops_done: Vec<AtomicU64>,
    /// Per-machine mainline fault-point crossings (kill countdown).
    events: Vec<AtomicU64>,
    /// Per-machine step-boundary counters.
    steps: Vec<AtomicU64>,
    /// Per-machine worker task-pickup counters.
    pickups: Vec<AtomicU64>,
    /// Chunks parked by drop-with-redelivery, keyed (src, dst, tag).
    held: Mutex<HashMap<(usize, usize, Tag), HeldChunk>>,
    /// Injection counters, registrable into the run's metrics registry.
    metrics: FaultMetrics,
}

/// What the fault plane actually did to a run, as registry counters
/// (`pgxd_fault_*_total`): the chaos harness and the health exporter read
/// these to correlate verdicts with injected adversity.
#[derive(Debug, Default)]
struct FaultMetrics {
    delays: crate::metrics::Counter,
    drops: crate::metrics::Counter,
    reorders: crate::metrics::Counter,
    pauses: crate::metrics::Counter,
    pickup_delays: crate::metrics::Counter,
    kills: crate::metrics::Counter,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("machines", &self.p)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, p: usize, net: NetworkModel, control: Arc<ClusterBarrier>) -> Self {
        let counters = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            plan,
            p,
            net,
            control,
            stream_seq: counters(p * p),
            drops_done: counters(p * p),
            events: counters(p),
            steps: counters(p),
            pickups: counters(p),
            held: Mutex::new(HashMap::new()),
            metrics: FaultMetrics::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Shares the injection counters with the run's metrics registry.
    pub(crate) fn register_metrics(&self, registry: &crate::metrics::MetricsRegistry) {
        registry.register_counter("pgxd_fault_delays_total", &self.metrics.delays);
        registry.register_counter("pgxd_fault_drops_total", &self.metrics.drops);
        registry.register_counter("pgxd_fault_reorders_total", &self.metrics.reorders);
        registry.register_counter("pgxd_fault_pauses_total", &self.metrics.pauses);
        registry.register_counter("pgxd_fault_pickup_delays_total", &self.metrics.pickup_delays);
        registry.register_counter("pgxd_fault_kills_total", &self.metrics.kills);
    }

    fn stream(&self, src: usize, dst: usize) -> usize {
        src * self.p + dst
    }

    /// `true` once the run is aborted (a peer failed); senders drop
    /// packets instead of panicking on torn-down links.
    pub(crate) fn is_aborted(&self) -> bool {
        self.control.is_aborted()
    }

    /// Timeout for one blocking receive.
    pub(crate) fn recv_timeout(&self) -> Option<Duration> {
        self.plan.step_timeout
    }

    /// Next sequence number of the (src, dst) chunk stream.
    pub(crate) fn next_chunk_seq(&self, src: usize, dst: usize) -> u64 {
        self.stream_seq[self.stream(src, dst)].fetch_add(1, Ordering::Relaxed)
    }

    /// The injected delay for chunk `seq` of the (src, dst) stream, if
    /// any: a seed-chosen uniform component plus the network model's
    /// jittered wire time for the chunk.
    pub(crate) fn chunk_send_delay(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        wire_bytes: usize,
    ) -> Option<Duration> {
        let stream = self.stream(src, dst) as u64;
        if !chance(self.plan.seed, site::DELAY, stream, seq, self.plan.chunk_delay_permille) {
            return None;
        }
        let h = decision(self.plan.seed, site::DELAY_LEN, stream, seq);
        let uniform = Duration::from_micros(h % (self.plan.chunk_delay_max_micros + 1));
        self.metrics.delays.inc();
        Some(uniform + self.net.jittered_packet_time(wire_bytes, h))
    }

    /// Whether chunk `seq` of the (src, dst) stream should have its first
    /// delivery attempt dropped (bounded per stream).
    pub(crate) fn should_drop_chunk(&self, src: usize, dst: usize, seq: u64) -> bool {
        if self.plan.drop_permille == 0 {
            return false;
        }
        let s = self.stream(src, dst);
        if self.drops_done[s].load(Ordering::Relaxed) >= self.plan.max_drops_per_stream {
            return false;
        }
        if chance(self.plan.seed, site::DROP, s as u64, seq, self.plan.drop_permille) {
            self.drops_done[s].fetch_add(1, Ordering::Relaxed);
            self.metrics.drops.inc();
            return true;
        }
        false
    }

    /// Parks a dropped chunk; returns a previously parked chunk of the
    /// same stream, which the caller must send now (at most one chunk is
    /// ever held back per stream).
    pub(crate) fn park_chunk(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        wire_bytes: usize,
        payload: Box<dyn Any + Send>,
    ) -> Option<HeldChunk> {
        self.held
            .lock()
            .insert((src, dst, tag), HeldChunk { wire_bytes, payload })
    }

    /// Takes the parked chunk of a stream for redelivery, if any.
    pub(crate) fn take_held(&self, src: usize, dst: usize, tag: Tag) -> Option<HeldChunk> {
        self.held.lock().remove(&(src, dst, tag))
    }

    /// Index to drain from a parked mailbox queue of length `len`
    /// (`recv_seq` is the receiver's drain counter). 0 = FIFO.
    pub(crate) fn mailbox_pick(&self, machine: usize, len: usize, recv_seq: u64) -> usize {
        if !chance(
            self.plan.seed,
            site::REORDER,
            machine as u64,
            recv_seq,
            self.plan.reorder_permille,
        ) {
            return 0;
        }
        let pick =
            (decision(self.plan.seed, site::REORDER_PICK, machine as u64, recv_seq) % len as u64) as usize;
        if pick != 0 {
            self.metrics.reorders.inc();
        }
        pick
    }

    /// A mainline fault point (one per blocking receive). Fires the
    /// plan's kill when the victim's crossing count reaches the
    /// threshold.
    pub(crate) fn fault_point(&self, machine: usize) {
        if self.plan.kill_machine == Some(machine) {
            let crossed = self.events[machine].fetch_add(1, Ordering::Relaxed) + 1;
            if crossed == self.plan.kill_after_events.max(1) {
                self.metrics.kills.inc();
                std::panic::panic_any(InjectedFailure::Kill { machine });
            }
        }
    }

    /// Pause/resume at a step boundary: sleeps a seed-chosen duration
    /// with probability `step_pause_permille`.
    pub(crate) fn step_pause(&self, machine: usize) {
        if self.plan.step_pause_permille == 0 {
            return;
        }
        let seq = self.steps[machine].fetch_add(1, Ordering::Relaxed);
        if chance(self.plan.seed, site::PAUSE, machine as u64, seq, self.plan.step_pause_permille) {
            let h = decision(self.plan.seed, site::PAUSE_LEN, machine as u64, seq);
            self.metrics.pauses.inc();
            std::thread::sleep(Duration::from_micros(h % (self.plan.step_pause_micros + 1)));
        }
    }

    /// Straggler injection: delays one worker task pickup on the
    /// designated machine.
    pub(crate) fn worker_pickup(&self, machine: usize) {
        if self.plan.straggler_machine != Some(machine) {
            return;
        }
        let seq = self.pickups[machine].fetch_add(1, Ordering::Relaxed);
        let h = decision(self.plan.seed, site::PICKUP, machine as u64, seq);
        self.metrics.pickup_delays.inc();
        std::thread::sleep(Duration::from_micros(h % (self.plan.straggler_delay_micros + 1)));
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_default_and_unarmed() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled);
        assert!(!plan.is_armed());
        assert_eq!(plan, FaultPlan::disabled());
    }

    #[test]
    fn builders_arm_the_plan() {
        let plan = FaultPlan::enabled(7)
            .chunk_delay(100, 50)
            .reorder(200)
            .drop_chunks(300, 8)
            .straggle(1, 25)
            .step_pause(100, 10)
            .kill(2, 4)
            .step_timeout(Duration::from_secs(1));
        assert!(plan.is_armed());
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.straggler_machine, Some(1));
        assert_eq!(plan.kill_machine, Some(2));
        assert_eq!(plan.without_drops().drop_permille, 0);
        // Permille values clamp at 1000.
        assert_eq!(FaultPlan::enabled(0).reorder(5000).reorder_permille, 1000);
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        for site in [site::DELAY, site::DROP, site::REORDER] {
            for seq in 0..64 {
                assert_eq!(decision(9, site, 3, seq), decision(9, site, 3, seq));
                assert!(chance(9, site, 3, seq, 1000));
                assert!(!chance(9, site, 3, seq, 0));
            }
        }
        // Different seeds disagree somewhere.
        assert!((0..64).any(|s| decision(1, site::DELAY, 0, s) != decision(2, site::DELAY, 0, s)));
    }

    fn injector(plan: FaultPlan, p: usize) -> FaultInjector {
        let barrier = Arc::new(ClusterBarrier::new(p, None));
        FaultInjector::new(plan, p, NetworkModel::default(), barrier)
    }

    #[test]
    fn drops_are_bounded_per_stream() {
        let inj = injector(FaultPlan::enabled(3).drop_chunks(1000, 5), 2);
        let dropped = (0..100).filter(|&s| inj.should_drop_chunk(0, 1, s)).count();
        assert_eq!(dropped, 5);
        // The other stream has its own budget.
        assert!(inj.should_drop_chunk(1, 0, 0));
    }

    #[test]
    fn park_holds_at_most_one_chunk_per_stream() {
        let inj = injector(FaultPlan::enabled(1).drop_chunks(1000, 8), 2);
        let tag = Tag::user(0, 0);
        assert!(inj.park_chunk(0, 1, tag, 8, Box::new(1u64)).is_none());
        // Parking a second chunk evicts (returns) the first.
        let prev = inj.park_chunk(0, 1, tag, 16, Box::new(2u64)).expect("first chunk returned");
        assert_eq!(prev.wire_bytes, 8);
        let held = inj.take_held(0, 1, tag).expect("second chunk parked");
        assert_eq!(held.wire_bytes, 16);
        assert!(inj.take_held(0, 1, tag).is_none());
    }

    #[test]
    fn mailbox_pick_in_bounds_and_fifo_when_unarmed() {
        let armed = injector(FaultPlan::enabled(5).reorder(1000), 2);
        for seq in 0..200 {
            let pick = armed.mailbox_pick(0, 7, seq);
            assert!(pick < 7);
        }
        // Some pick is actually reordered.
        assert!((0..200).any(|s| armed.mailbox_pick(0, 7, s) != 0));
        let unarmed = injector(FaultPlan::enabled(5), 2);
        assert!((0..200).all(|s| unarmed.mailbox_pick(0, 7, s) == 0));
    }

    #[test]
    fn chunk_delay_respects_probability_extremes() {
        let always = injector(FaultPlan::enabled(2).chunk_delay(1000, 10), 2);
        assert!(always.chunk_send_delay(0, 1, 0, 1024).is_some());
        let never = injector(FaultPlan::enabled(2), 2);
        assert!(never.chunk_send_delay(0, 1, 0, 1024).is_none());
    }

    #[test]
    fn barrier_releases_all_waiters() {
        let b = Arc::new(ClusterBarrier::new(3, None));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let b = b.clone();
            joins.push(crate::sync::thread::spawn(move || b.wait()));
        }
        assert_eq!(b.wait(), BarrierWait::Released);
        for j in joins {
            assert_eq!(j.join().unwrap(), BarrierWait::Released);
        }
    }

    #[test]
    fn barrier_abort_wakes_waiters() {
        let b = Arc::new(ClusterBarrier::new(2, None));
        let waiter = {
            let b = b.clone();
            crate::sync::thread::spawn(move || b.wait())
        };
        // Give the waiter a moment to park, then abort instead of arriving.
        std::thread::sleep(Duration::from_millis(20));
        b.abort();
        assert_eq!(waiter.join().unwrap(), BarrierWait::Aborted);
        assert!(b.is_aborted());
        // Later arrivals see the abort immediately.
        assert_eq!(b.wait(), BarrierWait::Aborted);
    }

    #[test]
    fn barrier_times_out_and_aborts_the_run() {
        let b = ClusterBarrier::new(2, Some(Duration::from_millis(30)));
        let start = Instant::now();
        assert_eq!(b.wait(), BarrierWait::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(b.is_aborted());
    }

    #[test]
    fn kill_fires_exactly_once_at_threshold() {
        let inj = injector(FaultPlan::enabled(0).kill(1, 3), 2);
        inj.fault_point(0); // wrong machine: never fires
        inj.fault_point(1);
        inj.fault_point(1);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.fault_point(1)));
        let payload = hit.expect_err("third crossing kills");
        let failure = payload.downcast_ref::<InjectedFailure>().expect("typed payload");
        assert!(matches!(failure, InjectedFailure::Kill { machine: 1 }));
        // Past the threshold the machine is already dead in practice; the
        // counter keeps counting but never re-fires.
        inj.fault_point(1);
    }

    #[test]
    fn run_error_displays_kind_and_machine() {
        let err = RunError {
            kind: RunErrorKind::InjectedKill,
            machine: Some(2),
            message: "fault plan killed machine 2".into(),
            peer_aborts: 3,
            residual: None,
            health: None,
        };
        let text = err.to_string();
        assert!(text.contains("injected kill"));
        assert!(text.contains("machine 2"));
    }
}
