//! Synchronization shim: the one import point for the primitives the
//! runtime synchronizes through, swappable between the production
//! implementations and [loom]'s model-checked versions.
//!
//! Compiled normally, every export resolves to `std`/`parking_lot` with
//! zero overhead over using them directly. Compiled with `--cfg loom`
//! (`RUSTFLAGS="--cfg loom" cargo test -p pgxd --release --test loom_pool
//! --test loom_exchange`), every export resolves to the `loom` equivalent,
//! so the loom tests can exhaustively explore thread interleavings of the
//! chunk pool and the overlapped-exchange protocol instead of sampling
//! whichever schedule the OS happens to produce.
//!
//! Everything in `pgxd` that synchronizes between threads must go through
//! this module or through [`TaskManager`](crate::task::TaskManager) —
//! `cargo xtask lint` enforces that `std::sync::Mutex`,
//! `parking_lot::Mutex`, and `std::thread::spawn` do not appear anywhere
//! else in the crate, so no code path can silently opt out of model
//! checking.
//!
//! The deliberate exceptions, documented here so the policy is auditable:
//!
//! - [`CommStats`](crate::metrics::CommStats) counters stay on
//!   `std::sync::atomic` — they are monotonic statistics with `Relaxed`
//!   ordering that never gate control flow, and keeping them invisible to
//!   loom keeps the model state space tractable.
//! - The fabric channels ([`comm`](crate::comm)) are crossbeam channels;
//!   loom cannot model them, so the loom tests exercise a miniature
//!   queue-based fabric built from this module's `Mutex`/`Condvar`
//!   instead (`tests/loom_exchange.rs`). The cluster barrier
//!   ([`ClusterBarrier`](crate::fault::ClusterBarrier)) is built on this
//!   module's primitives directly.
//!
//! [loom]: https://docs.rs/loom

#[cfg(not(loom))]
pub use std::sync::atomic;
#[cfg(loom)]
pub use loom::sync::atomic;

#[cfg(not(loom))]
pub use std::sync::Arc;
#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(not(loom))]
pub use std::thread;
#[cfg(loom)]
pub use loom::thread;

/// Guard type returned by [`Mutex::lock`].
#[cfg(not(loom))]
pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;
/// Guard type returned by [`Mutex::lock`].
#[cfg(loom)]
pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

/// Mutual exclusion for the pool shards and checker ledgers:
/// `parking_lot::Mutex` in production builds, `loom::sync::Mutex` under
/// `--cfg loom`.
///
/// The API is the infallible `parking_lot` one — under loom, poisoning
/// cannot be observed because a panicking model execution aborts the run.
pub struct Mutex<T> {
    #[cfg(not(loom))]
    inner: parking_lot::Mutex<T>,
    #[cfg(loom)]
    inner: loom::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(not(loom))]
            inner: parking_lot::Mutex::new(value),
            #[cfg(loom)]
            inner: loom::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(not(loom))]
        {
            self.inner.lock()
        }
        #[cfg(loom)]
        {
            self.inner.lock().unwrap()
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable paired with [`Mutex`]: `parking_lot::Condvar` in
/// production builds, `loom::sync::Condvar` under `--cfg loom`. Used by
/// the loom tests' miniature fabric; exported here so test code does not
/// have to name the backing crate.
pub struct Condvar {
    #[cfg(not(loom))]
    inner: parking_lot::Condvar,
    #[cfg(loom)]
    inner: loom::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar {
            #[cfg(not(loom))]
            inner: parking_lot::Condvar::new(),
            #[cfg(loom)]
            inner: loom::sync::Condvar::new(),
        }
    }

    /// Blocks on `guard` until notified, reacquiring the lock on wake.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(not(loom))]
        {
            let mut guard = guard;
            self.inner.wait(&mut guard);
            guard
        }
        #[cfg(loom)]
        {
            self.inner.wait(guard).unwrap()
        }
    }

    /// Blocks on `guard` until notified or `timeout` elapses, reacquiring
    /// the lock on wake. Returns the guard and whether the wait timed out.
    ///
    /// Under loom this degrades to an untimed [`Condvar::wait`] that never
    /// reports a timeout: loom has no time model, and the only caller
    /// (the cluster barrier's fault-plan step timeout) is not exercised by
    /// the loom suites.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(not(loom))]
        {
            let mut guard = guard;
            let result = self.inner.wait_for(&mut guard, timeout);
            (guard, result.timed_out())
        }
        #[cfg(loom)]
        {
            let _ = timeout;
            (self.inner.wait(guard).unwrap(), false)
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one()
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_one();
        });
        let mut guard = m.lock();
        while !*guard {
            guard = cv.wait(guard);
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_guard, timed_out) =
            cv.wait_for(m.lock(), std::time::Duration::from_millis(10));
        assert!(timed_out);
    }
}
