//! The task manager (§III): each machine runs parallel steps by putting
//! tasks on a list and letting a set of worker threads grab and execute
//! them.
//!
//! Faithful to the paper's description at the level that matters for the
//! sort: work is expressed as a task list, every worker pulls the next
//! task when it finishes its current one (so uneven tasks self-balance),
//! and a parallel step completes when the list is drained.
//!
//! This module and [`crate::sync`] are the only sanctioned ways to put
//! work on another thread inside `pgxd` — `cargo xtask lint` bans raw
//! `std::thread::spawn` elsewhere in the crate, so every spawned thread
//! is scoped (joined before the parallel step returns) and visible to the
//! verification tooling.

use crate::fault::FaultInjector;
use crate::metrics::Counter;
use crate::trace::{EventKind, MachineTrace};
use crossbeam::channel;
use std::sync::Arc;

/// A machine's worker-pool handle. Cloneable and cheap; the workers are
/// scoped to each [`TaskManager::run_tasks`] call, which both keeps the
/// implementation entirely safe and models the paper's "a list of tasks
/// is created at the beginning of each parallel step".
#[derive(Debug, Clone)]
pub struct TaskManager {
    workers: usize,
    /// Machine this pool belongs to (fault-plane addressing only).
    machine: usize,
    /// The run's fault plane; `None` (one branch per task pickup) when no
    /// [`FaultPlan`](crate::fault::FaultPlan) is armed.
    fault: Option<Arc<FaultInjector>>,
    /// Registry task-pickup counter (`pgxd_task_pickups_total{machine}`);
    /// `None` for standalone task managers built outside a cluster.
    pickups: Option<Counter>,
}

impl TaskManager {
    /// A task manager with `workers` worker threads (min 1).
    pub fn new(workers: usize) -> Self {
        TaskManager {
            workers: workers.max(1),
            machine: 0,
            fault: None,
            pickups: None,
        }
    }

    /// A task manager whose task pickups pass through the run's fault
    /// plane (straggler injection on the designated machine).
    pub(crate) fn with_fault(
        workers: usize,
        machine: usize,
        fault: Option<Arc<FaultInjector>>,
    ) -> Self {
        TaskManager {
            workers: workers.max(1),
            machine,
            fault,
            pickups: None,
        }
    }

    /// Attaches the registry's pickup counter; every task pickup on this
    /// manager (and its clones made afterwards) bumps it.
    pub(crate) fn set_pickup_counter(&mut self, counter: Counter) {
        self.pickups = Some(counter);
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The straggler fault point: every task pickup on this machine passes
    /// through here. One branch when no plan is armed.
    fn before_pickup(&self) {
        if let Some(c) = &self.pickups {
            c.inc();
        }
        if let Some(f) = &self.fault {
            f.worker_pickup(self.machine);
        }
    }

    /// Executes every task on the worker pool and waits for completion.
    /// Workers grab tasks from the shared list as they free up.
    pub fn run_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let workers = self.workers.min(tasks.len());
        if workers == 1 {
            for t in tasks {
                self.before_pickup();
                t();
            }
            return;
        }
        let (tx, rx) = channel::unbounded::<Box<dyn FnOnce() + Send + 'env>>();
        for t in tasks {
            tx.send(t).expect("task queue closed");
        }
        drop(tx); // workers exit when the list drains
        std::thread::scope(|scope| {
            for _ in 0..workers {
                // analyze: allow(hot-path-alloc): one channel-handle
                // clone per worker per task batch, not per task.
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok(task) = rx.recv() {
                        self.before_pickup();
                        task();
                    }
                });
            }
        });
    }

    /// Executes `tasks` on the worker pool while `foreground` runs on the
    /// calling thread, returning `foreground`'s result once both are done.
    ///
    /// This is the §IV-C "send while receiving" shape: the exchange hands
    /// its per-destination send loops to the workers and keeps the calling
    /// thread free to drain arrivals. Unlike [`run_tasks`], tasks are
    /// *never* run inline on the caller — `foreground` may block until the
    /// tasks make progress (and vice versa), so even a one-worker pool
    /// spawns a thread here. With no tasks, `foreground` runs inline.
    ///
    /// [`run_tasks`]: TaskManager::run_tasks
    pub fn run_tasks_overlapping<'env, R>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
        foreground: impl FnOnce() -> R,
    ) -> R {
        if tasks.is_empty() {
            return foreground();
        }
        let workers = self.workers.min(tasks.len());
        let (tx, rx) = channel::unbounded::<Box<dyn FnOnce() + Send + 'env>>();
        for t in tasks {
            tx.send(t).expect("task queue closed");
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                // analyze: allow(hot-path-alloc): one channel-handle
                // clone per worker per task batch, not per task.
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok(task) = rx.recv() {
                        self.before_pickup();
                        task();
                    }
                });
            }
            foreground()
        })
    }

    /// Runs one closure per item on the pool and collects the results in
    /// input order.
    pub fn run_tasks_collecting<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send + Default,
        F: Fn(usize, I) -> R + Sync,
    {
        let mut out: Vec<R> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), R::default);
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .iter_mut()
                .zip(items)
                .enumerate()
                .map(|(i, (slot, item))| {
                    Box::new(move || *slot = f(i, item)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run_tasks(tasks);
        }
        out
    }

    /// Parallel-for over `count` indices: `f(i)` runs as `count` tasks on
    /// the pool.
    pub fn parallel_for<F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..count)
            .map(|i| Box::new(move || f(i)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.run_tasks(tasks);
    }

    /// Splits `data` into one even chunk per worker and runs
    /// `f(worker_index, chunk)` on the pool.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync + Send,
    {
        let parts = self.workers.min(data.len()).max(1);
        if parts == 1 {
            f(0, data);
            return;
        }
        let base = data.len() / parts;
        let extra = data.len() % parts;
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(parts);
        let mut rest = data;
        for w in 0..parts {
            let take = base + usize::from(w < extra);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            tasks.push(Box::new(move || f(w, chunk)));
        }
        self.run_tasks(tasks);
    }
}

/// Wraps a task so its execution is recorded as a [`EventKind::Task`]
/// span on `lane` of `trace` (`a` = `label`, e.g. the destination of an
/// exchange send task; `b` = `index`). With `trace == None` the task is
/// returned untouched — the untraced path pays nothing per execution.
pub fn traced_task<'env>(
    trace: Option<Arc<MachineTrace>>,
    lane: u32,
    label: u64,
    index: u64,
    task: Box<dyn FnOnce() + Send + 'env>,
) -> Box<dyn FnOnce() + Send + 'env> {
    match trace {
        None => task,
        // analyze: allow(hot-path-alloc): one wrapper box per traced
        // task — traced runs only; the untraced path is untouched.
        Some(t) => Box::new(move || {
            let t0 = t.now_ns();
            task();
            t.span_since(lane, EventKind::Task, t0, label, index);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_tasks_executes_all() {
        let tm = TaskManager::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        tm.run_tasks(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_worker_runs_inline() {
        let tm = TaskManager::new(1);
        let mut touched = false;
        // With one worker the tasks run on the caller thread, so a plain
        // &mut capture is fine.
        let t: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| touched = true)];
        tm.run_tasks(t);
        assert!(touched);
    }

    #[test]
    fn run_tasks_collecting_preserves_order() {
        let tm = TaskManager::new(4);
        let items: Vec<u64> = (0..200).collect();
        let out = tm.run_tasks_collecting(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert!(out.iter().enumerate().all(|(i, &r)| r == 3 * i as u64));
    }

    #[test]
    fn run_tasks_collecting_empty() {
        let tm = TaskManager::new(2);
        let out: Vec<u8> = tm.run_tasks_collecting(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_for_covers_range() {
        let tm = TaskManager::new(3);
        let hits = AtomicUsize::new(0);
        tm.parallel_for(57, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn par_chunks_mut_transforms_everything() {
        let tm = TaskManager::new(4);
        let mut v: Vec<u64> = (0..1003).collect();
        tm.par_chunks_mut(&mut v, |_, chunk| {
            for x in chunk {
                *x *= 2;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn par_chunks_empty() {
        let tm = TaskManager::new(4);
        let mut v: Vec<u64> = vec![];
        tm.par_chunks_mut(&mut v, |_, c| assert!(c.is_empty()));
    }

    #[test]
    fn uneven_tasks_self_balance() {
        // One long task plus many short ones: all must finish.
        let tm = TaskManager::new(2);
        let done = AtomicUsize::new(0);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            done.fetch_add(1, Ordering::Relaxed);
        })];
        for _ in 0..50 {
            let d = &done;
            tasks.push(Box::new(move || {
                d.fetch_add(1, Ordering::Relaxed);
            }));
        }
        tm.run_tasks(tasks);
        assert_eq!(done.load(Ordering::Relaxed), 51);
    }

    #[test]
    fn overlapping_foreground_sees_background_progress() {
        // The foreground blocks until the background tasks have produced
        // something — only sound if tasks genuinely run off-thread, even
        // on a one-worker pool.
        let tm = TaskManager::new(1);
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10u64)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || tx.send(i).unwrap()) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        drop(tx);
        let got = tm.run_tasks_overlapping(tasks, || {
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        assert_eq!(got, 45);
    }

    #[test]
    fn overlapping_with_no_tasks_runs_foreground_inline() {
        let tm = TaskManager::new(4);
        let mut hit = false;
        let out = tm.run_tasks_overlapping(Vec::new(), || {
            hit = true;
            7
        });
        assert!(hit);
        assert_eq!(out, 7);
    }

    #[test]
    fn zero_workers_clamped() {
        let tm = TaskManager::new(0);
        assert_eq!(tm.workers(), 1);
    }

    #[test]
    fn traced_task_records_span_untraced_is_identity() {
        use crate::trace::{TraceCollector, TraceConfig};
        let tm = TaskManager::new(2);
        let hits = AtomicUsize::new(0);
        let c = TraceCollector::new(1, 3, TraceConfig::enabled().ring_capacity(8));
        let mk = |trace| {
            let h = &hits;
            traced_task(
                trace,
                2,
                42,
                0,
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            )
        };
        tm.run_tasks(vec![mk(Some(c.machine(0))), mk(None)]);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        let log = c.collect();
        assert_eq!(log.events.len(), 1, "only the traced task recorded");
        assert_eq!(log.events[0].lane, 2);
        assert_eq!(log.events[0].a, 42);
    }
}
