//! Runtime metrics: communication accounting and per-step wall timers.
//!
//! Every experiment in the paper's §V reads one of these: Fig. 5/6/8 read
//! total wall time, Fig. 7 reads the per-step breakdown, Fig. 9 reads
//! communication bytes / modeled wire time, Table II/III read the load
//! statistics the sort itself reports.

use crate::net::NetworkModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster-wide communication counters, shared by every machine's comm
/// manager. All counters are monotonic and relaxed — they are statistics,
/// not synchronization. They deliberately use `std::sync::atomic` rather
/// than [`crate::sync`]: keeping them invisible to loom keeps the model
/// checker's state space tractable, and nothing ever branches on them.
#[derive(Debug)]
pub struct CommStats {
    /// Payload bytes handed to the fabric (sender side).
    pub bytes_sent: AtomicU64,
    /// Number of packets handed to the fabric.
    pub messages_sent: AtomicU64,
    /// Modeled wire nanoseconds accumulated from the network model.
    pub modeled_wire_nanos: AtomicU64,
    /// §IV-C exchange-pipeline counters (chunk pool + placement).
    pub exchange: ExchangeStats,
    /// Bytes addressed to each machine — the per-receiver view that
    /// exposes hotspots (a bad splitter overloads one receiver's link
    /// even when the aggregate volume is unchanged).
    per_dst_bytes: Vec<AtomicU64>,
    net: NetworkModel,
}

/// Counters for the offset-addressed exchange hot path: how many chunks
/// moved, how often the [`ChunkPool`](crate::pool::ChunkPool) satisfied a
/// buffer request from recycled memory, and how many payload bytes were
/// memcpy-placed into output buffers. Fig. 7's harness prints these next
/// to the step breakdown so the "exchange is cheap" claim is auditable.
#[derive(Debug, Default)]
pub struct ExchangeStats {
    /// Data chunks handed to the fabric by `RequestBuffer` flushes.
    pub chunks_sent: AtomicU64,
    /// Spent chunk buffers returned to the pool after placement.
    pub chunks_recycled: AtomicU64,
    /// Buffer acquisitions served from the pool.
    pub pool_hits: AtomicU64,
    /// Buffer acquisitions that fell back to a fresh allocation.
    pub pool_misses: AtomicU64,
    /// Payload bytes copied into exchange output buffers.
    pub bytes_placed: AtomicU64,
}

impl ExchangeStats {
    /// Records a pool acquisition served from recycled memory.
    pub fn record_pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pool acquisition that had to allocate.
    pub fn record_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a spent buffer returned to the pool.
    pub fn record_recycled(&self) {
        self.chunks_recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one data chunk handed to the fabric.
    pub fn record_chunk_sent(&self) {
        self.chunks_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` memcpy-placed into an exchange output buffer.
    pub fn record_bytes_placed(&self, bytes: usize) {
        self.bytes_placed.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn summary(&self) -> ExchangeSummary {
        ExchangeSummary {
            chunks_sent: self.chunks_sent.load(Ordering::Relaxed),
            chunks_recycled: self.chunks_recycled.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            bytes_placed: self.bytes_placed.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of [`ExchangeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeSummary {
    /// Data chunks handed to the fabric.
    pub chunks_sent: u64,
    /// Spent chunk buffers returned to the pool.
    pub chunks_recycled: u64,
    /// Pool acquisitions served from recycled memory.
    pub pool_hits: u64,
    /// Pool acquisitions that allocated fresh memory.
    pub pool_misses: u64,
    /// Payload bytes memcpy-placed into output buffers.
    pub bytes_placed: u64,
}

impl ExchangeSummary {
    /// Fraction of buffer acquisitions served by the pool, in `[0, 1]`.
    /// Zero when no acquisition has happened yet.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Difference between two snapshots (later minus earlier). Saturating:
    /// a swapped or reset snapshot pair clamps to zero instead of
    /// underflow-panicking in debug builds.
    pub fn delta_since(&self, earlier: &ExchangeSummary) -> ExchangeSummary {
        ExchangeSummary {
            chunks_sent: self.chunks_sent.saturating_sub(earlier.chunks_sent),
            chunks_recycled: self.chunks_recycled.saturating_sub(earlier.chunks_recycled),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            bytes_placed: self.bytes_placed.saturating_sub(earlier.bytes_placed),
        }
    }
}

impl Default for CommStats {
    /// Stats with no per-destination tracking (tests, ad-hoc fabrics).
    fn default() -> Self {
        CommStats::new(0, NetworkModel::default())
    }
}

impl CommStats {
    /// Stats for a `p`-machine cluster under the given network model.
    pub fn new(p: usize, net: NetworkModel) -> Self {
        CommStats {
            bytes_sent: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
            modeled_wire_nanos: AtomicU64::new(0),
            exchange: ExchangeStats::default(),
            per_dst_bytes: (0..p).map(|_| AtomicU64::new(0)).collect(),
            net,
        }
    }

    /// Records one packet of `bytes` addressed to machine `dst`.
    pub fn record_packet(&self, bytes: usize, dst: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.modeled_wire_nanos.fetch_add(
            self.net.packet_time(bytes).as_nanos() as u64,
            Ordering::Relaxed,
        );
        if let Some(slot) = self.per_dst_bytes.get(dst) {
            slot.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Snapshot of the counters.
    pub fn summary(&self) -> CommSummary {
        let per_dst: Vec<u64> = self
            .per_dst_bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let max_recv = per_dst.iter().copied().max().unwrap_or(0);
        CommSummary {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            modeled_wire_time: Duration::from_nanos(self.modeled_wire_nanos.load(Ordering::Relaxed)),
            max_recv_bytes: max_recv,
            bottleneck_wire_time: Duration::from_secs_f64(
                max_recv as f64 / self.net.bandwidth_bytes_per_sec,
            ),
            exchange: self.exchange.summary(),
        }
    }
}

/// Immutable snapshot of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommSummary {
    /// Payload bytes handed to the fabric.
    pub bytes_sent: u64,
    /// Packets handed to the fabric.
    pub messages_sent: u64,
    /// Wire time the network model charges for that traffic in aggregate.
    pub modeled_wire_time: Duration,
    /// Bytes addressed to the most-loaded receiver.
    pub max_recv_bytes: u64,
    /// Wire time of the most-loaded receiver's inbound link — the
    /// hotspot view of communication overhead (Fig. 9).
    pub bottleneck_wire_time: Duration,
    /// Exchange-pipeline counters (chunk pool + placement).
    pub exchange: ExchangeSummary,
}

impl CommSummary {
    /// Difference between two snapshots (later minus earlier) for the
    /// monotonic scalar counters. The hotspot fields (`max_recv_bytes`,
    /// `bottleneck_wire_time`) are kept from `self` — a max is not
    /// delta-able. Saturating: a swapped or reset snapshot pair clamps to
    /// zero instead of underflow-panicking in debug builds.
    pub fn delta_since(&self, earlier: &CommSummary) -> CommSummary {
        CommSummary {
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            modeled_wire_time: self.modeled_wire_time.saturating_sub(earlier.modeled_wire_time),
            max_recv_bytes: self.max_recv_bytes,
            bottleneck_wire_time: self.bottleneck_wire_time,
            exchange: self.exchange.delta_since(&earlier.exchange),
        }
    }
}

/// Wall-clock timer for named algorithm steps, one per machine.
///
/// The sorting algorithm brackets each of its six §IV steps with
/// [`StepTimer::time`]; the cluster report aggregates them into the Fig. 7
/// breakdown.
#[derive(Debug, Default)]
pub struct StepTimer {
    steps: Vec<(&'static str, Duration)>,
}

impl StepTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, recording the duration under `name`. Repeated names
    /// accumulate (useful for loops).
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Records an externally measured duration under `name`.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        if let Some(entry) = self.steps.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += elapsed;
        } else {
            self.steps.push((name, elapsed));
        }
    }

    /// The recorded `(name, total duration)` pairs, in first-seen order.
    pub fn steps(&self) -> &[(&'static str, Duration)] {
        &self.steps
    }

    /// Duration recorded for `name` (zero if absent).
    pub fn get(&self, name: &str) -> Duration {
        self.steps
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Sum of all recorded steps.
    pub fn total(&self) -> Duration {
        self.steps.iter().map(|(_, d)| *d).sum()
    }
}

/// Per-machine step timings collected after a cluster run.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// `per_machine[m]` = the `(step, duration)` list machine `m` recorded.
    pub per_machine: Vec<Vec<(&'static str, Duration)>>,
}

impl StepReport {
    /// Maximum duration of `step` across machines — the critical-path view
    /// used by Fig. 7 (a step is as slow as its slowest machine).
    pub fn max_across_machines(&self, step: &str) -> Duration {
        self.per_machine
            .iter()
            .map(|steps| {
                steps
                    .iter()
                    .find(|(n, _)| *n == step)
                    .map(|(_, d)| *d)
                    .unwrap_or_default()
            })
            .max()
            .unwrap_or_default()
    }

    /// Mean duration of `step` across machines.
    pub fn mean_across_machines(&self, step: &str) -> Duration {
        if self.per_machine.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self
            .per_machine
            .iter()
            .map(|steps| {
                steps
                    .iter()
                    .find(|(n, _)| *n == step)
                    .map(|(_, d)| *d)
                    .unwrap_or_default()
            })
            .sum();
        total / self.per_machine.len() as u32
    }

    /// Nearest-rank percentile of `step`'s duration across machines
    /// (`pct` in `(0, 100]`). Machines that never recorded the step count
    /// as zero, matching [`max_across_machines`](Self::max_across_machines)
    /// and [`mean_across_machines`](Self::mean_across_machines).
    pub fn percentile_across_machines(&self, step: &str, pct: f64) -> Duration {
        if self.per_machine.is_empty() {
            return Duration::ZERO;
        }
        let mut durs: Vec<Duration> = self
            .per_machine
            .iter()
            .map(|steps| {
                steps
                    .iter()
                    .find(|(n, _)| *n == step)
                    .map(|(_, d)| *d)
                    .unwrap_or_default()
            })
            .collect();
        durs.sort_unstable();
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0 * durs.len() as f64).ceil() as usize).saturating_sub(1);
        durs[rank.min(durs.len() - 1)]
    }

    /// Median duration of `step` across machines (nearest-rank p50).
    pub fn p50_across_machines(&self, step: &str) -> Duration {
        self.percentile_across_machines(step, 50.0)
    }

    /// 95th-percentile duration of `step` across machines — with
    /// [`p50_across_machines`](Self::p50_across_machines), the straggler
    /// view Fig. 7 prints next to max/mean.
    pub fn p95_across_machines(&self, step: &str) -> Duration {
        self.percentile_across_machines(step, 95.0)
    }

    /// All step names observed, in first-seen order across machines.
    pub fn step_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for steps in &self.per_machine {
            for (n, _) in steps {
                if !names.contains(n) {
                    names.push(n);
                }
            }
        }
        names
    }
}

/// Shared handle to cluster-wide stats, cloned into every machine.
pub type SharedCommStats = Arc<CommStats>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_stats_accumulate() {
        let net = NetworkModel::infiniband_56g();
        let stats = CommStats::new(2, net);
        stats.record_packet(1000, 0);
        stats.record_packet(2000, 1);
        let s = stats.summary();
        assert_eq!(s.bytes_sent, 3000);
        assert_eq!(s.messages_sent, 2);
        assert!(s.modeled_wire_time >= net.latency * 2);
        assert_eq!(s.max_recv_bytes, 2000);
        assert!(s.bottleneck_wire_time > Duration::ZERO);
    }

    #[test]
    fn comm_summary_delta() {
        let stats = CommStats::default();
        stats.record_packet(100, 0);
        let before = stats.summary();
        stats.record_packet(900, 1);
        let delta = stats.summary().delta_since(&before);
        assert_eq!(delta.bytes_sent, 900);
        assert_eq!(delta.messages_sent, 1);
    }

    #[test]
    fn hotspot_tracking_finds_overloaded_receiver() {
        let stats = CommStats::new(4, NetworkModel::default());
        for dst in 0..4 {
            stats.record_packet(100, dst);
        }
        stats.record_packet(5000, 2); // hotspot
        let s = stats.summary();
        assert_eq!(s.max_recv_bytes, 5100);
        // Out-of-range destinations are counted in totals only.
        stats.record_packet(50, 99);
        assert_eq!(stats.summary().bytes_sent, s.bytes_sent + 50);
        assert_eq!(stats.summary().max_recv_bytes, 5100);
    }

    #[test]
    fn exchange_stats_accumulate_and_delta() {
        let stats = CommStats::default();
        stats.exchange.record_chunk_sent();
        stats.exchange.record_pool_miss();
        stats.exchange.record_bytes_placed(4096);
        let before = stats.summary().exchange;
        assert_eq!(before.chunks_sent, 1);
        assert_eq!(before.pool_misses, 1);
        assert_eq!(before.bytes_placed, 4096);
        assert_eq!(before.pool_hit_rate(), 0.0);
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_miss();
        stats.exchange.record_recycled();
        let now = stats.summary().exchange;
        assert!((now.pool_hit_rate() - 0.5).abs() < 1e-12);
        let delta = now.delta_since(&before);
        assert_eq!(delta.chunks_sent, 0);
        assert_eq!(delta.pool_hits, 2);
        assert_eq!(delta.pool_misses, 1);
        assert_eq!(delta.chunks_recycled, 1);
        // Empty summary reports a 0 hit rate, not NaN.
        assert_eq!(ExchangeSummary::default().pool_hit_rate(), 0.0);
    }

    #[test]
    fn step_timer_accumulates_repeats() {
        let mut t = StepTimer::new();
        t.record("merge", Duration::from_millis(5));
        t.record("merge", Duration::from_millis(7));
        t.record("sample", Duration::from_millis(1));
        assert_eq!(t.get("merge"), Duration::from_millis(12));
        assert_eq!(t.get("sample"), Duration::from_millis(1));
        assert_eq!(t.get("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(13));
        assert_eq!(t.steps().len(), 2);
    }

    #[test]
    fn step_timer_times_closures() {
        let mut t = StepTimer::new();
        let out = t.time("work", || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(t.get("work") >= Duration::from_millis(2));
    }

    #[test]
    fn step_report_aggregations() {
        let report = StepReport {
            per_machine: vec![
                vec![("a", Duration::from_millis(10)), ("b", Duration::from_millis(1))],
                vec![("a", Duration::from_millis(20))],
            ],
        };
        assert_eq!(report.max_across_machines("a"), Duration::from_millis(20));
        assert_eq!(report.mean_across_machines("a"), Duration::from_millis(15));
        assert_eq!(report.max_across_machines("b"), Duration::from_millis(1));
        assert_eq!(report.step_names(), vec!["a", "b"]);
        assert_eq!(report.max_across_machines("zz"), Duration::ZERO);
    }

    #[test]
    fn delta_since_saturates_on_swapped_snapshots() {
        // Passing snapshots in the wrong order (or diffing against a
        // freshly reset counter set) must clamp to zero, not underflow.
        let stats = CommStats::default();
        stats.record_packet(100, 0);
        stats.exchange.record_chunk_sent();
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_miss();
        stats.exchange.record_recycled();
        stats.exchange.record_bytes_placed(64);
        let before = stats.summary();
        stats.record_packet(900, 1);
        stats.exchange.record_chunk_sent();

        // Swapped order: earlier.delta_since(&later).
        let swapped = before.delta_since(&stats.summary());
        assert_eq!(swapped.bytes_sent, 0);
        assert_eq!(swapped.messages_sent, 0);
        assert_eq!(swapped.modeled_wire_time, Duration::ZERO);
        assert_eq!(swapped.exchange.chunks_sent, 0);

        // Reset counters: a default (all-zero) snapshot diffed against a
        // live one.
        let reset = CommSummary::default().delta_since(&before);
        assert_eq!(reset.bytes_sent, 0);
        assert_eq!(reset.exchange.chunks_recycled, 0);
        assert_eq!(reset.exchange.pool_hits, 0);
        assert_eq!(reset.exchange.pool_misses, 0);
        assert_eq!(reset.exchange.bytes_placed, 0);

        let ex_swapped = before.exchange.delta_since(&stats.summary().exchange);
        assert_eq!(ex_swapped, ExchangeSummary::default());
    }

    #[test]
    fn step_report_percentiles() {
        let ms = Duration::from_millis;
        let report = StepReport {
            per_machine: vec![
                vec![("a", ms(10))],
                vec![("a", ms(20))],
                vec![("a", ms(30))],
                vec![("a", ms(100))],
            ],
        };
        // Nearest-rank over [10, 20, 30, 100].
        assert_eq!(report.p50_across_machines("a"), ms(20));
        assert_eq!(report.p95_across_machines("a"), ms(100));
        assert_eq!(report.percentile_across_machines("a", 25.0), ms(10));
        assert_eq!(report.percentile_across_machines("a", 100.0), ms(100));
        // Missing step counts as zero per machine, like max/mean.
        assert_eq!(report.p50_across_machines("zz"), Duration::ZERO);
        // Single machine: every percentile is its value.
        let one = StepReport {
            per_machine: vec![vec![("a", ms(7))]],
        };
        assert_eq!(one.p50_across_machines("a"), ms(7));
        assert_eq!(one.p95_across_machines("a"), ms(7));
        // Empty report.
        assert_eq!(StepReport::default().p95_across_machines("a"), Duration::ZERO);
    }
}
