//! Runtime metrics: the always-on registry, communication accounting,
//! and per-step wall timers.
//!
//! Every experiment in the paper's §V reads one of these: Fig. 5/6/8 read
//! total wall time, Fig. 7 reads the per-step breakdown, Fig. 9 reads
//! communication bytes / modeled wire time, Table II/III read the load
//! statistics the sort itself reports.
//!
//! # The metrics plane (v2)
//!
//! [`MetricsRegistry`] is a cluster-wide, always-on registry of named
//! [`Counter`]s, [`Gauge`]s, and log₂-bucketed [`Histogram`]s. Every
//! runtime layer registers into it — the comm manager and exchange
//! pipeline ([`CommStats::register_into`]), the chunk pool (through the
//! shared [`ExchangeStats`] cells), the barrier and step hooks on
//! [`MachineCtx`](crate::machine::MachineCtx), the task manager's pickup
//! counter, the fault plane, and the sorter's load statistics. A metric
//! handle is an `Arc`'d atomic cell: registration (cold) takes the
//! registry lock once; the hot path is a single
//! `fetch_add(1, Relaxed)`.
//!
//! ## Ordering policy
//!
//! Everything here is `std::sync::atomic` with `Relaxed` ordering, and
//! deliberately *not* [`crate::sync`]: these are monotonic statistics
//! that never gate control flow, so keeping them invisible to loom keeps
//! the model checker's state space tractable. The `atomics-ordering`
//! analyze pass audits this file; every `Relaxed` site carries an
//! `analyze: allow(atomics-ordering)` justification.
//!
//! ## Snapshots and exporters
//!
//! [`MetricsRegistry::snapshot`] produces an immutable
//! [`MetricsSnapshot`] that can be merged across machines
//! ([`MetricsSnapshot::merge`], counters sum / gauges max / histogram
//! buckets add) and exported as Prometheus text
//! ([`MetricsSnapshot::to_prometheus_text`]) or JSON
//! ([`MetricsSnapshot::to_json`]). The in-flight health monitor
//! ([`crate::health`]) samples the same registry while the run executes.

use crate::net::NetworkModel;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonic counter: an `Arc`'d atomic cell, cheap to clone into every
/// layer that records it. One `fetch_add` per event, `Relaxed` — see the
/// module docs for the ordering policy.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    // analyze: allow(atomics-ordering): monotonic statistic, never gates
    // control flow; readers tolerate staleness by design.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    // analyze: allow(atomics-ordering): monotonic statistic, never gates
    // control flow; readers tolerate staleness by design.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    // analyze: allow(atomics-ordering): statistics read; no
    // happens-before obligation on the value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// `true` when `other` shares this counter's cell (registered alias).
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A last-value gauge (also supports monotone-max updates). Same cell
/// shape and ordering policy as [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    // analyze: allow(atomics-ordering): last-writer-wins statistic; no
    // consumer derives a happens-before edge from it.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger.
    // analyze: allow(atomics-ordering): monotone max of a statistic.
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    // analyze: allow(atomics-ordering): statistics read; no
    // happens-before obligation on the value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets a [`Histogram`] holds. Bucket 0 is the value 0;
/// bucket `i` (for `1 <= i < 63`) covers `[2^(i-1), 2^i - 1]`; bucket 63
/// saturates (`>= 2^62`).
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log₂-bucketed histogram for latencies (ns) and sizes
/// (bytes): concurrent writers each pay one bucket `fetch_add` plus the
/// count/sum/max updates, all `Relaxed`. Extraction (p50/p95/p99) and
/// cross-machine merge happen on [`HistogramSnapshot`]s.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// The bucket a value lands in (see [`HISTOGRAM_BUCKETS`]).
pub fn histogram_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` ([`u64::MAX`] for the saturation
/// bucket) — the value percentile extraction reports for the bucket.
pub fn histogram_bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    // analyze: allow(hot-path-alloc): one shared core per histogram,
    // allocated at registration; recording is lock- and alloc-free.
    fn default() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    // analyze: allow(atomics-ordering): independent monotonic statistic
    // cells; a reader snapshotting mid-update sees a histogram that is
    // merely a moment older, never torn control flow.
    pub fn record(&self, v: u64) {
        self.core.buckets[histogram_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram's current contents into this one (the
    /// cross-machine merge for live histograms; snapshots merge via
    /// [`HistogramSnapshot::merge`]).
    // analyze: allow(atomics-ordering): statistic-to-statistic copy; both
    // sides tolerate concurrent updates by design.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            let n = other.core.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.core.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(other.core.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.core.sum.fetch_add(other.core.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.core.max.fetch_max(other.core.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Immutable snapshot (buckets, count, sum, max).
    // analyze: allow(atomics-ordering): statistics reads; the snapshot is
    // advisory and per-cell consistent, which is all consumers need.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturation aside).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

/// Nearest-rank index for percentile `pct` over `len` sorted samples.
/// The single percentile definition shared by [`StepReport`] and
/// [`HistogramSnapshot`] (and through them, the bench harness).
pub fn nearest_rank_index(len: usize, pct: f64) -> usize {
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0 * len as f64).ceil() as usize).saturating_sub(1);
    rank.min(len.saturating_sub(1))
}

impl HistogramSnapshot {
    /// Nearest-rank percentile: the upper bound of the bucket the ranked
    /// observation falls in, clamped to the observed max (so a sparse
    /// histogram never reports a value larger than anything recorded).
    /// Zero when empty.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank_index(self.count as usize, pct) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return histogram_bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (nearest-rank p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's observations (cross-machine merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// Renders `family{k="v",...}` — the canonical labeled-metric name used
/// as a registry key (and understood label-wise by the Prometheus
/// exporter).
// analyze: allow(hot-path-alloc): name rendering happens at metric
// registration; hot paths hold pre-registered handles (see machine.rs
// step_hists) and never re-render names.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut s = String::with_capacity(family.len() + 16 * labels.len());
    s.push_str(family);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(v);
        s.push('"');
    }
    s.push('}');
    s
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The always-on metrics registry of one cluster run: named counters,
/// gauges, and histograms, shared (`Arc`) by every machine. Lookup and
/// registration take the registry lock (cold path, setup and step
/// boundaries only); recording through a handle is lock-free.
pub struct MetricsRegistry {
    epoch: Instant,
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            epoch: Instant::now(),
            inner: Mutex::new(RegistryInner::default()),
        }
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry; its epoch (for [`Self::now_ns`]) is the
    /// construction instant.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Nanoseconds since the registry was created — the shared clock
    /// progress gauges and the health monitor report against.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        if let Some((_, c)) = g.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        g.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Registers an *existing* counter cell under `name` — how
    /// [`CommStats`] shares its hot-path cells with the registry instead
    /// of double-counting. Replaces any previous registration of `name`.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        let mut g = self.inner.lock();
        if let Some(slot) = g.counters.iter_mut().find(|(n, _)| n == name) {
            slot.1 = c.clone();
        } else {
            g.counters.push((name.to_string(), c.clone()));
        }
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock();
        if let Some((_, c)) = g.gauges.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Gauge::new();
        g.gauges.push((name.to_string(), c.clone()));
        c
    }

    /// The histogram named `name`, creating it empty on first use.
    // analyze: allow(hot-path-alloc): first-use registration — callers
    // cache the returned handle (machine.rs step_hists), so steady-state
    // recording never re-enters here.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock();
        if let Some((_, h)) = g.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        g.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// An immutable snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Clone the (name, handle) pairs under the lock, read the cells
        // after releasing it: the registry lock only guards the name map,
        // and the handles are lock-free to read.
        let g = self.inner.lock();
        let counter_handles: Vec<(String, Counter)> = g.counters.to_vec();
        let gauge_handles: Vec<(String, Gauge)> = g.gauges.to_vec();
        let histogram_handles: Vec<(String, Histogram)> = g.histograms.to_vec();
        drop(g);
        let mut counters: Vec<(String, u64)> =
            counter_handles.into_iter().map(|(n, c)| (n, c.get())).collect();
        let mut gauges: Vec<(String, u64)> =
            gauge_handles.into_iter().map(|(n, c)| (n, c.get())).collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> =
            histogram_handles.into_iter().map(|(n, h)| (n, h.snapshot())).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            taken_at_ns: self.now_ns(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// Shared handle to a run's metrics registry.
pub type SharedMetrics = Arc<MetricsRegistry>;

// ---------------------------------------------------------------------------
// Snapshots and exporters
// ---------------------------------------------------------------------------

/// Immutable snapshot of a [`MetricsRegistry`]: the unit of export
/// (Prometheus text / JSON) and of cross-machine merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken, ns since the registry epoch.
    pub taken_at_ns: u64,
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Splits a canonical metric name into `(family, labels)` — `labels` is
/// the `k="v",...` interior, empty when unlabeled.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Value of the counter named exactly `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of the gauge named exactly `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named exactly `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Every counter of `family` (label variants included), in name
    /// order.
    pub fn counters_of_family<'a>(&'a self, family: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .iter()
            .filter(move |(n, _)| split_labels(n).0 == family)
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// Merges another machine's snapshot into this one: counters sum,
    /// gauges keep the max, histograms add bucket-wise. Names union.
    // analyze: allow(hot-path-alloc): snapshot merge runs at report/
    // gather granularity (once per run or per gather), not per element.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (n, v) in &other.counters {
            match self.counters.iter_mut().find(|(mine, _)| mine == n) {
                Some(slot) => slot.1 += v,
                None => self.counters.push((n.clone(), *v)),
            }
        }
        for (n, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(mine, _)| mine == n) {
                Some(slot) => slot.1 = slot.1.max(*v),
                None => self.gauges.push((n.clone(), *v)),
            }
        }
        for (n, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(mine, _)| mine == n) {
                Some(slot) => slot.1.merge(h),
                None => self.histograms.push((n.clone(), h.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self.taken_at_ns = self.taken_at_ns.max(other.taken_at_ns);
    }

    /// Prometheus text exposition (one `# TYPE` line per family; labeled
    /// variants share the family's type line; histograms emit cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, v) in &self.counters {
            let (family, _) = split_labels(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = family;
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family = "";
        for (name, v) in &self.gauges {
            let (family, _) = split_labels(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} gauge\n"));
                last_family = family;
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family = "";
        for (name, h) in &self.histograms {
            let (family, labels) = split_labels(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family;
            }
            let with = |extra: &str| {
                if labels.is_empty() {
                    format!("{{{extra}}}")
                } else {
                    format!("{{{labels},{extra}}}")
                }
            };
            let label_suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let mut cumulative = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .unwrap_or(0)
                .min(HISTOGRAM_BUCKETS - 2);
            for (i, &n) in h.buckets.iter().enumerate().take(top + 1) {
                cumulative += n;
                let le = histogram_bucket_upper(i);
                out.push_str(&format!(
                    "{family}_bucket{} {cumulative}\n",
                    with(&format!("le=\"{le}\""))
                ));
            }
            out.push_str(&format!(
                "{family}_bucket{} {}\n",
                with("le=\"+Inf\""),
                h.count
            ));
            out.push_str(&format!("{family}_sum{label_suffix} {}\n", h.sum));
            out.push_str(&format!("{family}_count{label_suffix} {}\n", h.count));
        }
        out
    }

    /// JSON export (schema `pgxd-metrics/1`): counters and gauges as
    /// name→value maps, histograms with count/sum/max, the extracted
    /// p50/p95/p99, and the raw bucket counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema\":\"pgxd-metrics/1\",\"taken_at_ns\":{},",
            self.taken_at_ns
        ));
        out.push_str("\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(n)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(n)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = {
                let top = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |t| t + 1);
                h.buckets[..top].iter().map(|b| b.to_string()).collect()
            };
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                json_escape(n),
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99(),
                buckets.join(",")
            ));
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------
// Communication accounting (registry-backed cells)
// ---------------------------------------------------------------------------

/// Cluster-wide communication counters, shared by every machine's comm
/// manager. All counters are monotonic and relaxed — they are statistics,
/// not synchronization (see the module docs). The cells are registry
/// [`Counter`]s, so [`CommStats::register_into`] shares them with the
/// [`MetricsRegistry`] instead of double-counting on the hot path.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Payload bytes handed to the fabric (sender side).
    pub bytes_sent: Counter,
    /// Number of packets handed to the fabric.
    pub messages_sent: Counter,
    /// Modeled wire nanoseconds accumulated from the network model.
    pub modeled_wire_nanos: Counter,
    /// §IV-C exchange-pipeline counters (chunk pool + placement).
    pub exchange: ExchangeStats,
    /// Bytes addressed to each machine — the per-receiver view that
    /// exposes hotspots (a bad splitter overloads one receiver's link
    /// even when the aggregate volume is unchanged).
    per_dst_bytes: Vec<Counter>,
    net: NetworkModel,
}

/// Counters for the offset-addressed exchange hot path: how many chunks
/// moved, how often the [`ChunkPool`](crate::pool::ChunkPool) satisfied a
/// buffer request from recycled memory, and how many payload bytes were
/// memcpy-placed into output buffers. Fig. 7's harness prints these next
/// to the step breakdown so the "exchange is cheap" claim is auditable.
#[derive(Debug, Default)]
pub struct ExchangeStats {
    /// Data chunks handed to the fabric by `RequestBuffer` flushes.
    pub chunks_sent: Counter,
    /// Spent chunk buffers returned to the pool after placement.
    pub chunks_recycled: Counter,
    /// Buffer acquisitions served from the pool.
    pub pool_hits: Counter,
    /// Buffer acquisitions that fell back to a fresh allocation.
    pub pool_misses: Counter,
    /// Payload bytes copied into exchange output buffers.
    pub bytes_placed: Counter,
}

impl ExchangeStats {
    /// Records a pool acquisition served from recycled memory.
    pub fn record_pool_hit(&self) {
        self.pool_hits.inc();
    }

    /// Records a pool acquisition that had to allocate.
    pub fn record_pool_miss(&self) {
        self.pool_misses.inc();
    }

    /// Records a spent buffer returned to the pool.
    pub fn record_recycled(&self) {
        self.chunks_recycled.inc();
    }

    /// Records one data chunk handed to the fabric.
    pub fn record_chunk_sent(&self) {
        self.chunks_sent.inc();
    }

    /// Records `bytes` memcpy-placed into an exchange output buffer.
    pub fn record_bytes_placed(&self, bytes: usize) {
        self.bytes_placed.add(bytes as u64);
    }

    /// Shares the exchange cells with `registry` under their canonical
    /// names.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("pgxd_exchange_chunks_sent_total", &self.chunks_sent);
        registry.register_counter("pgxd_exchange_chunks_recycled_total", &self.chunks_recycled);
        registry.register_counter("pgxd_pool_hits_total", &self.pool_hits);
        registry.register_counter("pgxd_pool_misses_total", &self.pool_misses);
        registry.register_counter("pgxd_exchange_bytes_placed_total", &self.bytes_placed);
    }

    /// Snapshot of the counters.
    pub fn summary(&self) -> ExchangeSummary {
        ExchangeSummary {
            chunks_sent: self.chunks_sent.get(),
            chunks_recycled: self.chunks_recycled.get(),
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            bytes_placed: self.bytes_placed.get(),
        }
    }
}

/// Immutable snapshot of [`ExchangeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeSummary {
    /// Data chunks handed to the fabric.
    pub chunks_sent: u64,
    /// Spent chunk buffers returned to the pool.
    pub chunks_recycled: u64,
    /// Pool acquisitions served from recycled memory.
    pub pool_hits: u64,
    /// Pool acquisitions that allocated fresh memory.
    pub pool_misses: u64,
    /// Payload bytes memcpy-placed into output buffers.
    pub bytes_placed: u64,
}

impl ExchangeSummary {
    /// Fraction of buffer acquisitions served by the pool, in `[0, 1]`.
    /// Zero when no acquisition has happened yet.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Difference between two snapshots (later minus earlier). Saturating:
    /// a swapped or reset snapshot pair clamps to zero instead of
    /// underflow-panicking in debug builds.
    pub fn delta_since(&self, earlier: &ExchangeSummary) -> ExchangeSummary {
        ExchangeSummary {
            chunks_sent: self.chunks_sent.saturating_sub(earlier.chunks_sent),
            chunks_recycled: self.chunks_recycled.saturating_sub(earlier.chunks_recycled),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            bytes_placed: self.bytes_placed.saturating_sub(earlier.bytes_placed),
        }
    }
}

impl CommStats {
    /// Stats for a `p`-machine cluster under the given network model.
    /// (`Default` gives no per-destination tracking — tests, ad-hoc
    /// fabrics.)
    pub fn new(p: usize, net: NetworkModel) -> Self {
        CommStats {
            bytes_sent: Counter::new(),
            messages_sent: Counter::new(),
            modeled_wire_nanos: Counter::new(),
            exchange: ExchangeStats::default(),
            per_dst_bytes: (0..p).map(|_| Counter::new()).collect(),
            net,
        }
    }

    /// Records one packet of `bytes` addressed to machine `dst`.
    pub fn record_packet(&self, bytes: usize, dst: usize) {
        self.bytes_sent.add(bytes as u64);
        self.messages_sent.inc();
        self.modeled_wire_nanos
            .add(self.net.packet_time(bytes).as_nanos() as u64);
        if let Some(slot) = self.per_dst_bytes.get(dst) {
            slot.add(bytes as u64);
        }
    }

    /// Shares every comm cell (totals, exchange, per-destination bytes)
    /// with `registry` under the canonical `pgxd_comm_*` names — the
    /// "registration" that makes the registry the single source of truth
    /// without a second hot-path `fetch_add`.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("pgxd_comm_bytes_sent_total", &self.bytes_sent);
        registry.register_counter("pgxd_comm_messages_total", &self.messages_sent);
        registry.register_counter("pgxd_comm_wire_nanos_total", &self.modeled_wire_nanos);
        for (dst, c) in self.per_dst_bytes.iter().enumerate() {
            let dst = dst.to_string();
            registry.register_counter(&labeled("pgxd_comm_dst_bytes_total", &[("dst", &dst)]), c);
        }
        self.exchange.register_into(registry);
    }

    /// Bytes addressed to each machine, indexed by destination.
    // analyze: allow(hot-path-alloc): O(p) counter snapshot at watchdog
    // sampling cadence.
    pub fn per_dst_snapshot(&self) -> Vec<u64> {
        self.per_dst_bytes.iter().map(|b| b.get()).collect()
    }

    /// Snapshot of the counters.
    pub fn summary(&self) -> CommSummary {
        let max_recv = self.per_dst_snapshot().into_iter().max().unwrap_or(0);
        CommSummary {
            bytes_sent: self.bytes_sent.get(),
            messages_sent: self.messages_sent.get(),
            modeled_wire_time: Duration::from_nanos(self.modeled_wire_nanos.get()),
            max_recv_bytes: max_recv,
            bottleneck_wire_time: Duration::from_secs_f64(
                max_recv as f64 / self.net.bandwidth_bytes_per_sec,
            ),
            exchange: self.exchange.summary(),
        }
    }
}

/// Immutable snapshot of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommSummary {
    /// Payload bytes handed to the fabric.
    pub bytes_sent: u64,
    /// Packets handed to the fabric.
    pub messages_sent: u64,
    /// Wire time the network model charges for that traffic in aggregate.
    pub modeled_wire_time: Duration,
    /// Bytes addressed to the most-loaded receiver.
    pub max_recv_bytes: u64,
    /// Wire time of the most-loaded receiver's inbound link — the
    /// hotspot view of communication overhead (Fig. 9).
    pub bottleneck_wire_time: Duration,
    /// Exchange-pipeline counters (chunk pool + placement).
    pub exchange: ExchangeSummary,
}

impl CommSummary {
    /// Difference between two snapshots (later minus earlier) for the
    /// monotonic scalar counters. The hotspot fields (`max_recv_bytes`,
    /// `bottleneck_wire_time`) are kept from `self` — a max is not
    /// delta-able. Saturating: a swapped or reset snapshot pair clamps to
    /// zero instead of underflow-panicking in debug builds.
    pub fn delta_since(&self, earlier: &CommSummary) -> CommSummary {
        CommSummary {
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            modeled_wire_time: self.modeled_wire_time.saturating_sub(earlier.modeled_wire_time),
            max_recv_bytes: self.max_recv_bytes,
            bottleneck_wire_time: self.bottleneck_wire_time,
            exchange: self.exchange.delta_since(&earlier.exchange),
        }
    }
}

// ---------------------------------------------------------------------------
// Step timing
// ---------------------------------------------------------------------------

/// Wall-clock timer for named algorithm steps, one per machine.
///
/// The sorting algorithm brackets each of its six §IV steps with
/// [`StepTimer::time`]; the cluster report aggregates them into the Fig. 7
/// breakdown.
#[derive(Debug, Default)]
pub struct StepTimer {
    steps: Vec<(&'static str, Duration)>,
}

impl StepTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, recording the duration under `name`. Repeated names
    /// accumulate (useful for loops).
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Records an externally measured duration under `name`.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        if let Some(entry) = self.steps.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += elapsed;
        } else {
            self.steps.push((name, elapsed));
        }
    }

    /// The recorded `(name, total duration)` pairs, in first-seen order.
    pub fn steps(&self) -> &[(&'static str, Duration)] {
        &self.steps
    }

    /// Duration recorded for `name` (zero if absent).
    pub fn get(&self, name: &str) -> Duration {
        self.steps
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Sum of all recorded steps.
    pub fn total(&self) -> Duration {
        self.steps.iter().map(|(_, d)| *d).sum()
    }
}

/// Per-machine step timings collected after a cluster run.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// `per_machine[m]` = the `(step, duration)` list machine `m` recorded.
    pub per_machine: Vec<Vec<(&'static str, Duration)>>,
}

impl StepReport {
    fn durations_of(&self, step: &str) -> impl Iterator<Item = Duration> + '_ {
        let step = step.to_string();
        self.per_machine.iter().map(move |steps| {
            steps
                .iter()
                .find(|(n, _)| *n == step)
                .map(|(_, d)| *d)
                .unwrap_or_default()
        })
    }

    /// Maximum duration of `step` across machines — the critical-path view
    /// used by Fig. 7 (a step is as slow as its slowest machine).
    pub fn max_across_machines(&self, step: &str) -> Duration {
        self.durations_of(step).max().unwrap_or_default()
    }

    /// Mean duration of `step` across machines.
    pub fn mean_across_machines(&self, step: &str) -> Duration {
        if self.per_machine.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.durations_of(step).sum();
        total / self.per_machine.len() as u32
    }

    /// Nearest-rank percentile of `step`'s duration across machines
    /// (`pct` in `(0, 100]`), via the same [`nearest_rank_index`] the
    /// registry histograms use. Machines that never recorded the step
    /// count as zero, matching
    /// [`max_across_machines`](Self::max_across_machines) and
    /// [`mean_across_machines`](Self::mean_across_machines).
    pub fn percentile_across_machines(&self, step: &str, pct: f64) -> Duration {
        if self.per_machine.is_empty() {
            return Duration::ZERO;
        }
        let mut durs: Vec<Duration> = self.durations_of(step).collect();
        durs.sort_unstable();
        durs[nearest_rank_index(durs.len(), pct)]
    }

    /// Median duration of `step` across machines (nearest-rank p50).
    pub fn p50_across_machines(&self, step: &str) -> Duration {
        self.percentile_across_machines(step, 50.0)
    }

    /// 95th-percentile duration of `step` across machines — with
    /// [`p50_across_machines`](Self::p50_across_machines), the straggler
    /// view Fig. 7 prints next to max/mean.
    pub fn p95_across_machines(&self, step: &str) -> Duration {
        self.percentile_across_machines(step, 95.0)
    }

    /// All step names observed, in first-seen order across machines.
    pub fn step_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for steps in &self.per_machine {
            for (n, _) in steps {
                if !names.contains(n) {
                    names.push(n);
                }
            }
        }
        names
    }
}

/// Shared handle to cluster-wide stats, cloned into every machine.
pub type SharedCommStats = Arc<CommStats>;

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn comm_stats_accumulate() {
        let net = NetworkModel::infiniband_56g();
        let stats = CommStats::new(2, net);
        stats.record_packet(1000, 0);
        stats.record_packet(2000, 1);
        let s = stats.summary();
        assert_eq!(s.bytes_sent, 3000);
        assert_eq!(s.messages_sent, 2);
        assert!(s.modeled_wire_time >= net.latency * 2);
        assert_eq!(s.max_recv_bytes, 2000);
        assert!(s.bottleneck_wire_time > Duration::ZERO);
        assert_eq!(stats.per_dst_snapshot(), vec![1000, 2000]);
    }

    #[test]
    fn comm_summary_delta() {
        let stats = CommStats::default();
        stats.record_packet(100, 0);
        let before = stats.summary();
        stats.record_packet(900, 1);
        let delta = stats.summary().delta_since(&before);
        assert_eq!(delta.bytes_sent, 900);
        assert_eq!(delta.messages_sent, 1);
    }

    #[test]
    fn hotspot_tracking_finds_overloaded_receiver() {
        let stats = CommStats::new(4, NetworkModel::default());
        for dst in 0..4 {
            stats.record_packet(100, dst);
        }
        stats.record_packet(5000, 2); // hotspot
        let s = stats.summary();
        assert_eq!(s.max_recv_bytes, 5100);
        // Out-of-range destinations are counted in totals only.
        stats.record_packet(50, 99);
        assert_eq!(stats.summary().bytes_sent, s.bytes_sent + 50);
        assert_eq!(stats.summary().max_recv_bytes, 5100);
    }

    #[test]
    fn exchange_stats_accumulate_and_delta() {
        let stats = CommStats::default();
        stats.exchange.record_chunk_sent();
        stats.exchange.record_pool_miss();
        stats.exchange.record_bytes_placed(4096);
        let before = stats.summary().exchange;
        assert_eq!(before.chunks_sent, 1);
        assert_eq!(before.pool_misses, 1);
        assert_eq!(before.bytes_placed, 4096);
        assert_eq!(before.pool_hit_rate(), 0.0);
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_miss();
        stats.exchange.record_recycled();
        let now = stats.summary().exchange;
        assert!((now.pool_hit_rate() - 0.5).abs() < 1e-12);
        let delta = now.delta_since(&before);
        assert_eq!(delta.chunks_sent, 0);
        assert_eq!(delta.pool_hits, 2);
        assert_eq!(delta.pool_misses, 1);
        assert_eq!(delta.chunks_recycled, 1);
        // Empty summary reports a 0 hit rate, not NaN.
        assert_eq!(ExchangeSummary::default().pool_hit_rate(), 0.0);
    }

    #[test]
    fn step_timer_accumulates_repeats() {
        let mut t = StepTimer::new();
        t.record("merge", Duration::from_millis(5));
        t.record("merge", Duration::from_millis(7));
        t.record("sample", Duration::from_millis(1));
        assert_eq!(t.get("merge"), Duration::from_millis(12));
        assert_eq!(t.get("sample"), Duration::from_millis(1));
        assert_eq!(t.get("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(13));
        assert_eq!(t.steps().len(), 2);
    }

    #[test]
    fn step_timer_times_closures() {
        let mut t = StepTimer::new();
        let out = t.time("work", || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(t.get("work") >= Duration::from_millis(2));
    }

    #[test]
    fn step_report_aggregations() {
        let report = StepReport {
            per_machine: vec![
                vec![("a", Duration::from_millis(10)), ("b", Duration::from_millis(1))],
                vec![("a", Duration::from_millis(20))],
            ],
        };
        assert_eq!(report.max_across_machines("a"), Duration::from_millis(20));
        assert_eq!(report.mean_across_machines("a"), Duration::from_millis(15));
        assert_eq!(report.max_across_machines("b"), Duration::from_millis(1));
        assert_eq!(report.step_names(), vec!["a", "b"]);
        assert_eq!(report.max_across_machines("zz"), Duration::ZERO);
    }

    #[test]
    fn delta_since_saturates_on_swapped_snapshots() {
        // Passing snapshots in the wrong order (or diffing against a
        // freshly reset counter set) must clamp to zero, not underflow.
        let stats = CommStats::default();
        stats.record_packet(100, 0);
        stats.exchange.record_chunk_sent();
        stats.exchange.record_pool_hit();
        stats.exchange.record_pool_miss();
        stats.exchange.record_recycled();
        stats.exchange.record_bytes_placed(64);
        let before = stats.summary();
        stats.record_packet(900, 1);
        stats.exchange.record_chunk_sent();

        // Swapped order: earlier.delta_since(&later).
        let swapped = before.delta_since(&stats.summary());
        assert_eq!(swapped.bytes_sent, 0);
        assert_eq!(swapped.messages_sent, 0);
        assert_eq!(swapped.modeled_wire_time, Duration::ZERO);
        assert_eq!(swapped.exchange.chunks_sent, 0);

        // Reset counters: a default (all-zero) snapshot diffed against a
        // live one.
        let reset = CommSummary::default().delta_since(&before);
        assert_eq!(reset.bytes_sent, 0);
        assert_eq!(reset.exchange.chunks_recycled, 0);
        assert_eq!(reset.exchange.pool_hits, 0);
        assert_eq!(reset.exchange.pool_misses, 0);
        assert_eq!(reset.exchange.bytes_placed, 0);

        let ex_swapped = before.exchange.delta_since(&stats.summary().exchange);
        assert_eq!(ex_swapped, ExchangeSummary::default());
    }

    #[test]
    fn step_report_percentiles() {
        let ms = Duration::from_millis;
        let report = StepReport {
            per_machine: vec![
                vec![("a", ms(10))],
                vec![("a", ms(20))],
                vec![("a", ms(30))],
                vec![("a", ms(100))],
            ],
        };
        // Nearest-rank over [10, 20, 30, 100].
        assert_eq!(report.p50_across_machines("a"), ms(20));
        assert_eq!(report.p95_across_machines("a"), ms(100));
        assert_eq!(report.percentile_across_machines("a", 25.0), ms(10));
        assert_eq!(report.percentile_across_machines("a", 100.0), ms(100));
        // Missing step counts as zero per machine, like max/mean.
        assert_eq!(report.p50_across_machines("zz"), Duration::ZERO);
        // Single machine: every percentile is its value.
        let one = StepReport {
            per_machine: vec![vec![("a", ms(7))]],
        };
        assert_eq!(one.p50_across_machines("a"), ms(7));
        assert_eq!(one.p95_across_machines("a"), ms(7));
        // Empty report.
        assert_eq!(StepReport::default().p95_across_machines("a"), Duration::ZERO);
    }

    // --- registry -------------------------------------------------------

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pgxd_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same cell.
        let again = reg.counter("pgxd_test_total");
        assert!(c.same_cell(&again));
        again.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("pgxd_test_gauge");
        g.set(9);
        g.set_max(3); // lower: no change
        assert_eq!(g.get(), 9);
        g.set_max(12);
        assert_eq!(g.get(), 12);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("pgxd_test_total"), Some(6));
        assert_eq!(snap.gauge("pgxd_test_gauge"), Some(12));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn register_counter_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let stats = CommStats::new(2, NetworkModel::default());
        stats.register_into(&reg);
        stats.record_packet(1000, 1);
        stats.exchange.record_pool_hit();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pgxd_comm_bytes_sent_total"), Some(1000));
        assert_eq!(snap.counter("pgxd_comm_messages_total"), Some(1));
        assert_eq!(snap.counter("pgxd_pool_hits_total"), Some(1));
        assert_eq!(snap.counter("pgxd_comm_dst_bytes_total{dst=\"0\"}"), Some(0));
        assert_eq!(snap.counter("pgxd_comm_dst_bytes_total{dst=\"1\"}"), Some(1000));
        // The registry view and the CommSummary view are the same cells.
        assert_eq!(stats.summary().bytes_sent, 1000);
        let dsts: Vec<u64> = snap
            .counters_of_family("pgxd_comm_dst_bytes_total")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(dsts, stats.per_dst_snapshot());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(histogram_bucket(0), 0);
        assert_eq!(histogram_bucket(1), 1);
        assert_eq!(histogram_bucket(2), 2);
        assert_eq!(histogram_bucket(3), 2);
        assert_eq!(histogram_bucket(4), 3);
        assert_eq!(histogram_bucket(1023), 10);
        assert_eq!(histogram_bucket(1024), 11);
        assert_eq!(histogram_bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(histogram_bucket(1u64 << 62), HISTOGRAM_BUCKETS - 1);
        assert_eq!(histogram_bucket_upper(0), 0);
        assert_eq!(histogram_bucket_upper(1), 1);
        assert_eq!(histogram_bucket_upper(10), 1023);
        assert_eq!(histogram_bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_saturates_at_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        // The saturated percentile is clamped to the observed max, not
        // some bucket bound beyond it.
        assert_eq!(s.percentile(50.0), u64::MAX);
    }

    #[test]
    fn empty_snapshot_percentiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p95(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        // And a default (bucketless) snapshot behaves the same.
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn histogram_percentiles_track_nearest_rank() {
        let h = Histogram::new();
        // 90 small values (bucket of 100 ⇒ upper bound 127), 10 large
        // (bucket of 100_000 ⇒ upper bound 131071).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 127);
        assert!(s.p95() >= 100_000);
        // Clamped to the observed max.
        assert_eq!(s.p95(), 100_000.min(s.p95()));
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn concurrent_writers_then_merge() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.histogram("pgxd_concurrent_ns");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);

        // Live merge: a second histogram folds in; counts add exactly.
        let other = Histogram::new();
        for i in 0..500u64 {
            other.record(i);
        }
        h.merge_from(&other);
        let merged = h.snapshot();
        assert_eq!(merged.count, 4500);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 4500);

        // Snapshot merge agrees with live merge on count/sum.
        let mut a = s.clone();
        a.merge(&other.snapshot());
        assert_eq!(a.count, merged.count);
        assert_eq!(a.sum, merged.sum);
        assert_eq!(a.max, merged.max);
    }

    #[test]
    fn snapshot_merge_unions_and_sums() {
        let ra = MetricsRegistry::new();
        ra.counter("shared_total").add(5);
        ra.counter("only_a_total").add(1);
        ra.gauge("g").set(10);
        ra.histogram("h").record(8);
        let rb = MetricsRegistry::new();
        rb.counter("shared_total").add(7);
        rb.counter("only_b_total").add(2);
        rb.gauge("g").set(4);
        rb.histogram("h").record(32);

        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        assert_eq!(merged.counter("shared_total"), Some(12));
        assert_eq!(merged.counter("only_a_total"), Some(1));
        assert_eq!(merged.counter("only_b_total"), Some(2));
        assert_eq!(merged.gauge("g"), Some(10)); // max wins
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);
    }

    #[test]
    fn prometheus_text_format() {
        let reg = MetricsRegistry::new();
        reg.counter("pgxd_a_total").add(3);
        reg.counter(&labeled("pgxd_dst_total", &[("dst", "0")])).add(1);
        reg.counter(&labeled("pgxd_dst_total", &[("dst", "1")])).add(2);
        reg.gauge("pgxd_g").set(7);
        let h = reg.histogram(&labeled("pgxd_lat_ns", &[("step", "x")]));
        h.record(100);
        h.record(1000);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE pgxd_a_total counter\npgxd_a_total 3\n"));
        // One TYPE line covers both label variants.
        assert_eq!(text.matches("# TYPE pgxd_dst_total counter").count(), 1);
        assert!(text.contains("pgxd_dst_total{dst=\"0\"} 1\n"));
        assert!(text.contains("pgxd_dst_total{dst=\"1\"} 2\n"));
        assert!(text.contains("# TYPE pgxd_g gauge\npgxd_g 7\n"));
        assert!(text.contains("# TYPE pgxd_lat_ns histogram\n"));
        assert!(text.contains("pgxd_lat_ns_bucket{step=\"x\",le=\"127\"} 1\n"));
        assert!(text.contains("pgxd_lat_ns_bucket{step=\"x\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("pgxd_lat_ns_sum{step=\"x\"} 1100\n"));
        assert!(text.contains("pgxd_lat_ns_count{step=\"x\"} 2\n"));
    }

    #[test]
    fn json_export_escapes_and_structures() {
        let reg = MetricsRegistry::new();
        reg.counter(&labeled("pgxd_dst_total", &[("dst", "0")])).add(4);
        reg.histogram("pgxd_h").record(5);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"pgxd-metrics/1\""));
        // Label quotes are escaped.
        assert!(json.contains("\"pgxd_dst_total{dst=\\\"0\\\"}\":4"));
        assert!(json.contains("\"pgxd_h\":{\"count\":1,\"sum\":5,\"max\":5"));
        assert!(json.contains("\"p50\":5"));
        // Still a structurally balanced object.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn labeled_renders_canonical_names() {
        assert_eq!(labeled("f", &[]), "f");
        assert_eq!(labeled("f", &[("a", "1")]), "f{a=\"1\"}");
        assert_eq!(labeled("f", &[("a", "1"), ("b", "x")]), "f{a=\"1\",b=\"x\"}");
    }
}
