//! Recycled chunk buffers for the §IV-C exchange pipeline.
//!
//! PGX.D's data manager does not allocate a fresh buffer for every
//! outgoing request packet: buffers are drawn from a pool and returned
//! once the receiver has consumed them, so a steady-state exchange costs
//! no allocation per chunk. [`ChunkPool`] reproduces that mechanism for
//! the simulator: the send side ([`RequestBuffer`](crate::buffer::RequestBuffer))
//! acquires chunk backing stores here, and the receive side of
//! [`exchange_by_offsets`](crate::machine::MachineCtx::exchange_by_offsets)
//! releases every arriving chunk back after placing its elements, so the
//! same allocations circulate for the whole exchange (and across
//! exchanges, since the pool lives on the machine context).
//!
//! The pool is sharded: a handful of mutex-protected free lists, with
//! release/acquire spreading across shards via an atomic cursor, so the
//! receive thread and the task-manager send workers do not serialize on
//! one lock. Buffers are stored type-erased as raw allocations keyed by
//! `(TypeId, byte capacity)` — keying by `TypeId` guarantees a buffer is
//! only ever rebuilt into a `Vec` of the exact element type it was
//! allocated for, which keeps `Vec::from_raw_parts` sound (same layout,
//! same alignment, same element-capacity arithmetic).
//!
//! Synchronization goes through [`crate::sync`], so `--cfg loom` builds
//! model-check the shard locking (`tests/loom_pool.rs`); in debug builds
//! a pool created by the cluster runtime also reports chunk custody to the
//! fabric's [`ProtocolChecker`].

use crate::checker::{self, ProtocolChecker};
use crate::metrics::SharedCommStats;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::trace::{EventKind, MachineTrace, LANE_MAIN};
use crate::sync::Mutex;
use std::any::TypeId;
use std::collections::{BTreeMap, HashMap, HashSet};
// The checker handle is deliberately a std Arc, not the loom one from
// crate::sync: it is plain shared ownership of non-loom-modeled state
// (the ledger's own Mutex is the shim's), and the fabric side
// (comm/machine/cluster) hands it over as std::sync::Arc.
use std::sync::Arc;

/// Number of independent free-list shards. Shrunk under loom so the model
/// checker's state space stays tractable while still exercising the
/// cross-shard cursor logic.
#[cfg(not(loom))]
const SHARDS: usize = 8;
#[cfg(loom)]
const SHARDS: usize = 2;

/// Per-shard retention bound: beyond this many bytes parked in one shard,
/// released buffers are dropped instead of pooled (keeps a pathological
/// burst of in-flight chunks from pinning memory forever).
const MAX_SHARD_BYTES: usize = 16 << 20;

/// A type-erased, empty `Vec<T>` allocation: pointer + byte capacity plus
/// the dropper that can rebuild and free it.
struct RawChunk {
    ptr: *mut u8,
    cap_bytes: usize,
    /// Rebuilds the original `Vec<T>` (len 0) and drops it.
    ///
    /// SAFETY contract: must only be called with the `ptr`/`cap_bytes`
    /// captured alongside it, exactly once.
    drop_fn: unsafe fn(*mut u8, usize),
}

// SAFETY: a RawChunk is the guts of an empty Vec<T> where T: Send (enforced
// by `release`'s bound); an empty buffer carries no T values, so moving the
// allocation between threads is safe.
unsafe impl Send for RawChunk {}

/// SAFETY contract: `(ptr, cap_bytes)` must be the parts of an empty
/// `Vec<T>` with capacity `cap_bytes / size_of::<T>()`, not freed yet.
unsafe fn drop_chunk<T>(ptr: *mut u8, cap_bytes: usize) {
    // SAFETY: caller guarantees (ptr, cap_bytes) came from an empty Vec<T>
    // with capacity cap_bytes / size_of::<T>().
    unsafe {
        drop(Vec::from_raw_parts(
            ptr.cast::<T>(),
            0,
            cap_bytes / std::mem::size_of::<T>(),
        ));
    }
}

/// One shard: free lists per element type, ordered by byte capacity so an
/// acquire can grab the smallest buffer that is big enough.
#[derive(Default)]
struct Shard {
    lists: HashMap<TypeId, BTreeMap<usize, Vec<RawChunk>>>,
    held_bytes: usize,
}

/// Sharded free-list of recycled chunk buffers, keyed by byte capacity.
///
/// One pool per simulated machine (created by the cluster runtime and
/// shared between the machine's receive thread and its send workers via
/// `Arc`). Hit/miss/recycle counters feed the cluster-wide
/// [`ExchangeStats`](crate::metrics::ExchangeStats).
pub struct ChunkPool {
    shards: Vec<Mutex<Shard>>,
    cursor: AtomicUsize,
    stats: SharedCommStats,
    /// Byte capacities this pool has ever handed out of `acquire` — a
    /// `release` of a buffer whose capacity was never handed out means a
    /// foreign buffer is being pushed into the free lists (debug builds
    /// and the `checker` feature assert against it; see
    /// [`release`](ChunkPool::release)).
    known_caps: Mutex<HashSet<usize>>,
    /// Fabric-wide checker custody ledger, when this pool belongs to a
    /// running cluster (debug builds).
    checker: Option<Arc<ProtocolChecker>>,
    /// Machine id for checker diagnostics (`usize::MAX` = standalone pool).
    machine: usize,
    /// The machine's trace sink (hit/miss instants); `None` when untraced.
    /// std Arc for the same reason as `checker` above.
    trace: Option<Arc<MachineTrace>>,
}

impl Drop for Shard {
    fn drop(&mut self) {
        for by_cap in self.lists.values_mut() {
            for chunks in by_cap.values_mut() {
                for c in chunks.drain(..) {
                    // SAFETY: (ptr, cap_bytes, drop_fn) were captured
                    // together from a live Vec in `release`.
                    unsafe { (c.drop_fn)(c.ptr, c.cap_bytes) };
                }
            }
        }
    }
}

impl Drop for ChunkPool {
    fn drop(&mut self) {
        // Tell the checker the parked allocations are about to be freed,
        // so their addresses can be legitimately reused by later
        // allocations without tripping the double-release diagnostic.
        if checker::ENABLED {
            if let Some(chk) = &self.checker {
                for shard in &self.shards {
                    let shard = shard.lock();
                    for by_cap in shard.lists.values() {
                        for chunks in by_cap.values() {
                            for c in chunks {
                                chk.chunk_freed(c.ptr as usize);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl ChunkPool {
    /// A pool reporting its counters into `stats`.
    pub fn new(stats: SharedCommStats) -> Self {
        ChunkPool {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cursor: AtomicUsize::new(0),
            stats,
            known_caps: Mutex::new(HashSet::new()),
            checker: None,
            machine: usize::MAX,
            trace: None,
        }
    }

    /// A pool that additionally reports chunk custody for `machine` to the
    /// fabric's protocol checker (used by the cluster runtime).
    pub(crate) fn with_checker(
        stats: SharedCommStats,
        checker: Arc<ProtocolChecker>,
        machine: usize,
    ) -> Self {
        ChunkPool {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            cursor: AtomicUsize::new(0),
            stats,
            known_caps: Mutex::new(HashSet::new()),
            checker: Some(checker),
            machine,
            trace: None,
        }
    }

    /// Attaches the machine's trace sink (must run before the pool is
    /// shared; [`MachineCtx::new`](crate::machine::MachineCtx) does so).
    pub(crate) fn set_trace(&mut self, trace: Arc<MachineTrace>) {
        self.trace = Some(trace);
    }

    /// An empty `Vec<T>` with capacity for at least `cap_elems` elements:
    /// recycled if a big-enough buffer of this type is pooled (a *hit*),
    /// freshly allocated otherwise (a *miss*).
    // analyze: allow(panic-surface): shard index is `% SHARDS`; the range
    // lookups assert free-list invariants the pool itself maintains.
    pub fn acquire<T: Send + 'static>(&self, cap_elems: usize) -> Vec<T> {
        let size = std::mem::size_of::<T>();
        if size == 0 {
            return Vec::with_capacity(cap_elems);
        }
        let want_bytes = cap_elems * size;
        let key = TypeId::of::<T>();
        // analyze: allow(atomics-ordering): round-robin probe hint only —
        // a stale read just starts the shard probe elsewhere; the chunks
        // themselves are published by the shard locks.
        let start = self.cursor.load(Ordering::Relaxed);
        for i in 0..SHARDS {
            let mut shard = self.shards[(start + i) % SHARDS].lock();
            let Some(by_cap) = shard.lists.get_mut(&key) else {
                continue;
            };
            let Some((&cap_bytes, _)) = by_cap.range(want_bytes..).next() else {
                continue;
            };
            let chunks = by_cap.get_mut(&cap_bytes).expect("range key present");
            let chunk = chunks.pop().expect("empty capacity bucket not pruned");
            if chunks.is_empty() {
                by_cap.remove(&cap_bytes);
            }
            shard.held_bytes -= cap_bytes;
            // Ledger update happens inside the shard critical section so
            // custody order and ledger order can never diverge: once the
            // lock drops, a concurrent release may re-park this address,
            // and its chunk_released must observe our chunk_acquired.
            self.note_handed_out(chunk.ptr as usize, cap_bytes);
            drop(shard);
            self.stats.exchange.record_pool_hit();
            if let Some(t) = &self.trace {
                t.instant(LANE_MAIN, EventKind::PoolHit, want_bytes as u64, 0);
            }
            // SAFETY: TypeId match guarantees the allocation was made as a
            // Vec<T>, so layout/alignment agree and cap_bytes is an exact
            // multiple of size_of::<T>().
            return unsafe { Vec::from_raw_parts(chunk.ptr.cast::<T>(), 0, cap_bytes / size) };
        }
        self.stats.exchange.record_pool_miss();
        if let Some(t) = &self.trace {
            t.instant(LANE_MAIN, EventKind::PoolMiss, want_bytes as u64, 0);
        }
        let fresh: Vec<T> = Vec::with_capacity(cap_elems);
        if fresh.capacity() > 0 {
            self.note_handed_out(fresh.as_ptr() as usize, fresh.capacity() * size);
        }
        fresh
    }

    /// Records an allocation leaving the pool (debug builds): its capacity
    /// becomes a legitimate `release` key, and the fabric checker starts
    /// tracking its custody.
    fn note_handed_out(&self, addr: usize, cap_bytes: usize) {
        if !checker::ENABLED {
            return;
        }
        self.known_caps.lock().insert(cap_bytes);
        if let Some(chk) = &self.checker {
            chk.chunk_acquired(self.machine, addr, cap_bytes);
        }
    }

    /// Returns a spent chunk buffer to the pool. The contents are cleared;
    /// only the allocation is kept. Buffers of zero capacity (or arriving
    /// while the shard is at its retention bound) are simply dropped.
    ///
    /// In debug builds (or with the `checker` feature) this asserts the
    /// buffer's byte capacity matches one this pool ever handed out — a
    /// foreign buffer pushed into the free lists would otherwise poison
    /// them silently. Chunks that arrived over the fabric from *another*
    /// machine's pool go through `release_inbound` instead, which admits
    /// their capacity.
    pub fn release<T: Send + 'static>(&self, buf: Vec<T>) {
        self.release_impl(buf, false);
    }

    /// Returns an *inbound* chunk — one whose backing store was acquired
    /// from the sending machine's pool and arrived here over the fabric —
    /// adopting its capacity as a legitimate key for this pool.
    pub(crate) fn release_inbound<T: Send + 'static>(&self, buf: Vec<T>) {
        self.release_impl(buf, true);
    }

    // analyze: allow(panic-surface): shard index is `% SHARDS` (the hash
    // cannot select an out-of-range shard).
    fn release_impl<T: Send + 'static>(&self, mut buf: Vec<T>, admit_capacity: bool) {
        let size = std::mem::size_of::<T>();
        buf.clear();
        let cap_bytes = buf.capacity() * size;
        if cap_bytes == 0 {
            return;
        }
        if checker::ENABLED {
            let mut known = self.known_caps.lock();
            if admit_capacity {
                known.insert(cap_bytes);
            } else {
                assert!(
                    known.contains(&cap_bytes),
                    "ChunkPool::release: machine {} got a foreign buffer \
                     ({cap_bytes} B capacity, type {}) that this pool never \
                     handed out — release_inbound is for chunks from remote \
                     pools",
                    self.machine_label(),
                    std::any::type_name::<T>(),
                );
            }
        }
        let addr = buf.as_ptr() as usize;
        // analyze: allow(atomics-ordering): placement counter spreading
        // releases across shards; the buffer is published by the shard
        // lock taken on the next line, not by this counter.
        let shard_idx = self.cursor.fetch_add(1, Ordering::Relaxed) % SHARDS;
        let mut shard = self.shards[shard_idx].lock();
        if shard.held_bytes + cap_bytes > MAX_SHARD_BYTES {
            self.note_released(addr, cap_bytes, false);
            drop(shard);
            return; // buf drops: allocation is freed
        }
        let mut buf = std::mem::ManuallyDrop::new(buf);
        let chunk = RawChunk {
            ptr: buf.as_mut_ptr().cast::<u8>(),
            cap_bytes,
            drop_fn: drop_chunk::<T>,
        };
        shard.held_bytes += cap_bytes;
        shard
            .lists
            .entry(TypeId::of::<T>())
            .or_default()
            .entry(cap_bytes)
            .or_default()
            .push(chunk);
        // Record the release inside the critical section that publishes the
        // chunk: the moment the shard lock drops, a concurrent acquire can
        // pop this chunk and record chunk_acquired — the ledger must
        // already show it parked by then, or the checker reports a phantom
        // "handed out twice".
        self.note_released(addr, cap_bytes, true);
        drop(shard);
        self.stats.exchange.record_recycled();
    }

    /// Records an allocation returning to the pool for the fabric checker
    /// (debug builds). `parked` is false when the retention bound dropped
    /// the allocation instead of keeping it.
    fn note_released(&self, addr: usize, cap_bytes: usize, parked: bool) {
        if !checker::ENABLED {
            return;
        }
        if let Some(chk) = &self.checker {
            chk.chunk_released(self.machine, addr, cap_bytes, parked);
        }
    }

    // analyze: allow(hot-path-alloc): label string is only built on trace/
    // checker-enabled release paths; production release never calls this.
    fn machine_label(&self) -> String {
        if self.machine == usize::MAX {
            "<standalone>".to_string()
        } else {
            self.machine.to_string()
        }
    }

    /// Total bytes currently parked across all shards (diagnostics).
    pub fn held_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().held_bytes).sum()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use std::sync::Arc;

    fn pool() -> (ChunkPool, SharedCommStats) {
        let stats: SharedCommStats = Arc::new(CommStats::default());
        (ChunkPool::new(stats.clone()), stats)
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let (pool, stats) = pool();
        let v: Vec<u64> = pool.acquire(100);
        assert!(v.capacity() >= 100);
        assert_eq!(stats.exchange.summary().pool_misses, 1);
        pool.release(v);
        assert_eq!(stats.exchange.summary().chunks_recycled, 1);
        let v2: Vec<u64> = pool.acquire(100);
        assert!(v2.capacity() >= 100);
        assert_eq!(stats.exchange.summary().pool_hits, 1);
        pool.release(v2);
    }

    #[test]
    fn acquire_prefers_big_enough_buffer() {
        let (pool, stats) = pool();
        let small: Vec<u64> = pool.acquire(10);
        let big: Vec<u64> = pool.acquire(1000);
        pool.release(small);
        pool.release(big);
        // Wants 100: the 10-cap buffer cannot satisfy it, the 1000-cap can.
        let v: Vec<u64> = pool.acquire(100);
        assert!(v.capacity() >= 1000);
        assert_eq!(stats.exchange.summary().pool_hits, 1);
        pool.release(v);
    }

    #[test]
    fn types_do_not_mix() {
        let (pool, stats) = pool();
        let owned: Vec<u64> = pool.acquire(64);
        pool.release(owned);
        // A pooled u64 buffer covers the byte size, but the element type
        // differs: must be a miss.
        let v: Vec<u32> = pool.acquire(64);
        assert_eq!(v.len(), 0);
        assert_eq!(stats.exchange.summary().pool_misses, 2);
        assert_eq!(stats.exchange.summary().pool_hits, 0);
    }

    #[test]
    fn release_clears_contents() {
        let (pool, _) = pool();
        let mut v: Vec<u64> = pool.acquire(3);
        v.extend([1, 2, 3]);
        pool.release(v);
        let v: Vec<u64> = pool.acquire(1);
        assert!(v.is_empty());
        assert!(v.capacity() >= 3);
        pool.release(v);
    }

    #[test]
    fn zero_capacity_release_is_noop() {
        let (pool, stats) = pool();
        pool.release::<u64>(Vec::new());
        assert_eq!(stats.exchange.summary().chunks_recycled, 0);
        assert_eq!(pool.held_bytes(), 0);
    }

    #[test]
    fn inbound_chunk_adopted_and_recirculated() {
        // A chunk arriving over the fabric originates on the *sender's*
        // pool; release_inbound admits it, after which it recirculates
        // like any owned buffer.
        let (pool, stats) = pool();
        pool.release_inbound(vec![1u64, 2, 3, 4]);
        assert_eq!(stats.exchange.summary().chunks_recycled, 1);
        let v: Vec<u64> = pool.acquire(4);
        assert!(v.capacity() >= 4);
        assert_eq!(stats.exchange.summary().pool_hits, 1);
        pool.release(v);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "checker"))]
    #[should_panic(expected = "foreign buffer")]
    fn foreign_release_asserts() {
        let (pool, _) = pool();
        // Never handed out by this pool and not inbound: must assert.
        pool.release(vec![1u64, 2, 3]);
    }

    #[test]
    fn pool_drop_frees_parked_buffers() {
        // No assertion beyond "does not leak / crash" (miri verifies).
        let (pool, _) = pool();
        for _ in 0..20 {
            let a: Vec<u64> = pool.acquire(32);
            let b: Vec<u8> = pool.acquire(7);
            pool.release(a);
            pool.release(b);
        }
        drop(pool);
    }

    #[test]
    fn concurrent_acquire_release() {
        let (pool, stats) = pool();
        let pool = Arc::new(pool);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let v: Vec<u64> = pool.acquire(128);
                        pool.release(v);
                    }
                });
            }
        });
        let ex = stats.exchange.summary();
        assert_eq!(ex.pool_hits + ex.pool_misses, 800);
        assert!(ex.pool_hits > 0);
    }

    #[test]
    fn concurrent_custody_ledger_stays_consistent() {
        // Regression: the checker ledger must be updated inside the shard
        // critical section. With the old unlock-then-notify ordering, an
        // acquire racing a release could pop a chunk and record
        // chunk_acquired before the release's chunk_released landed,
        // tripping a phantom "handed out twice" panic on a correct run.
        let stats: SharedCommStats = Arc::new(CommStats::default());
        let chk = Arc::new(ProtocolChecker::new(1));
        let pool = Arc::new(ChunkPool::with_checker(stats, chk.clone(), 0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        let v: Vec<u64> = pool.acquire(128);
                        pool.release(v);
                    }
                });
            }
        });
        // Every buffer was released: nothing may still be live.
        chk.check_quiescent("pool stress teardown", Some(0));
    }
}
