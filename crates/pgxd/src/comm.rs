//! The communication manager: point-to-point typed message passing
//! between simulated machines, with byte accounting against the network
//! model.
//!
//! Machines exchange [`Packet`]s over unbounded crossbeam channels (the
//! fabric). Payloads move by ownership — no serialization — which models
//! PGX.D's zero-copy native transport; the *Spark* baseline deliberately
//! serializes instead (see `pgxd-baselines`), which is one of the
//! mechanisms behind the paper's 2–3× gap.
//!
//! Tag discipline: collectives stamp every packet with a sequence number
//! managed by [`MachineCtx`](crate::machine::MachineCtx) so that two
//! consecutive collectives can never steal each other's packets even when
//! machines run ahead; a per-machine mailbox holds early arrivals.

use crate::checker::ProtocolChecker;
use crate::fault::{ClusterBarrier, FaultInjector, InjectedFailure};
use crate::metrics::SharedCommStats;
use crate::trace::{EventKind, MachineTrace};
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message tag: `(kind, sequence)`. Collectives derive these; user code
/// can use [`Tag::user`]. Ordered so diagnostics can list tags
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// Namespace of the message (collective kind or user-defined).
    pub kind: u16,
    /// Sequence number within the namespace.
    pub seq: u64,
}

impl Tag {
    /// A user-namespace tag. Kinds 0..=15 are reserved for collectives.
    // analyze: allow(panic-surface): tag-kind overflow is a caller bug the
    // API contract promises to reject loudly.
    pub fn user(kind: u16, seq: u64) -> Tag {
        Tag {
            kind: kind.checked_add(16).expect("user tag kind overflow"),
            seq,
        }
    }
}

/// Reserved collective tag kinds.
pub mod kinds {
    /// Gather-to-master payloads.
    pub const GATHER: u16 = 1;
    /// Master-to-all broadcast payloads.
    pub const BROADCAST: u16 = 2;
    /// Simple all-to-all payloads.
    pub const ALL_TO_ALL: u16 = 3;
    /// All-gather payloads.
    pub const ALL_GATHER: u16 = 4;
    /// Offset-addressed exchange: the count matrix rows.
    pub const EXCHANGE_COUNTS: u16 = 5;
    /// Offset-addressed exchange: the data chunks.
    pub const EXCHANGE_DATA: u16 = 6;
}

/// A fabric packet: opaque owned payload plus accounting metadata.
pub struct Packet {
    /// Sender machine id.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Bytes this payload would occupy on the wire.
    pub wire_bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// Receiving anything takes longer than this ⇒ the SPMD protocol is
/// broken (mismatched collective order); panic instead of hanging.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// The send half of a machine's communication manager. Cheap to clone, so
/// a machine can send from a helper thread while its main thread receives
/// (the §IV-C "send while receiving" pattern).
#[derive(Clone)]
pub struct CommSender {
    id: usize,
    links: Vec<Sender<Packet>>,
    stats: SharedCommStats,
    /// Fabric-wide protocol-checker ledger (hooks are no-ops in release
    /// builds without the `checker` feature).
    checker: Arc<ProtocolChecker>,
    /// This machine's trace sink; `None` (one branch per send) when the
    /// run is untraced.
    trace: Option<Arc<MachineTrace>>,
    /// The run's fault plane; `None` (one branch per send) when no
    /// [`FaultPlan`](crate::fault::FaultPlan) is armed.
    fault: Option<Arc<FaultInjector>>,
}

impl CommSender {
    /// This machine's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.links.len()
    }

    /// Sends an owned `Vec<T>` to `dst`. Wire bytes = `len * size_of::<T>()`.
    /// Self-sends are delivered but not charged to the network.
    // analyze: allow(hot-path-alloc): the boxed payload IS the wire
    // format — the in-process fabric ships `Box<dyn Any>` envelopes.
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        let wire_bytes = std::mem::size_of::<T>() * data.len();
        self.send_packet(dst, tag, wire_bytes, Box::new(data));
    }

    /// Sends a single owned value to `dst`.
    // analyze: allow(hot-path-alloc): boxed wire envelope (see send_vec).
    pub fn send_value<T: Send + 'static>(&self, dst: usize, tag: Tag, value: T) {
        let wire_bytes = std::mem::size_of::<T>();
        self.send_packet(dst, tag, wire_bytes, Box::new(value));
    }

    /// Sends a value whose wire size differs from `size_of::<T>()` (e.g. a
    /// header + heap payload pair). The caller supplies the true byte
    /// count for accounting.
    // analyze: allow(hot-path-alloc): boxed wire envelope (see send_vec).
    pub fn send_value_with_bytes<T: Send + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
        wire_bytes: usize,
    ) {
        self.send_packet(dst, tag, wire_bytes, Box::new(value));
    }

    /// Sends one §IV-C exchange chunk: elements destined for absolute
    /// offset `offset` in `dst`'s output buffer. Wire bytes = payload plus
    /// the offset header; the chunk is counted in
    /// [`ExchangeStats`](crate::metrics::ExchangeStats).
    // analyze: allow(hot-path-alloc): boxed wire envelope (see send_vec);
    // one per exchange chunk, amortized over the chunk's elements.
    pub fn send_offset_chunk<T: Send + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        offset: usize,
        data: Vec<T>,
    ) {
        let wire_bytes = std::mem::size_of::<T>() * data.len() + std::mem::size_of::<usize>();
        let payload: Box<dyn Any + Send> = Box::new((offset, data));
        if let Some(f) = &self.fault {
            let seq = f.next_chunk_seq(self.id, dst);
            if let Some(delay) = f.chunk_send_delay(self.id, dst, seq, wire_bytes) {
                std::thread::sleep(delay);
            }
            if f.should_drop_chunk(self.id, dst, seq) {
                // Drop-with-redelivery: park this chunk (its first delivery
                // attempt is "lost"); the stream's previously parked chunk,
                // if any, goes out now in its place, so at most one chunk
                // per stream is ever outstanding and every chunk is
                // eventually delivered — behind later traffic. The §IV-C
                // offset addressing must absorb the reordering.
                if let Some(prev) = f.park_chunk(self.id, dst, tag, wire_bytes, payload) {
                    self.send_chunk_packet(dst, tag, prev.wire_bytes, prev.payload);
                }
                return;
            }
        }
        self.send_chunk_packet(dst, tag, wire_bytes, payload);
    }

    /// Re-sends the stream's parked chunk, if the fault plane held one
    /// back. The exchange calls this after a stream's final flush so
    /// drop-with-redelivery can never strand a chunk. One branch when no
    /// plan is armed.
    pub fn flush_held_chunks(&self, dst: usize, tag: Tag) {
        if let Some(f) = &self.fault {
            if let Some(held) = f.take_held(self.id, dst, tag) {
                self.send_chunk_packet(dst, tag, held.wire_bytes, held.payload);
            }
        }
    }

    /// The single exit point for exchange chunks: stats and trace are
    /// recorded here, at the moment the chunk actually enters the fabric,
    /// so a parked-then-redelivered chunk is accounted exactly once.
    fn send_chunk_packet(&self, dst: usize, tag: Tag, wire_bytes: usize, payload: Box<dyn Any + Send>) {
        self.stats.exchange.record_chunk_sent();
        if let Some(t) = &self.trace {
            // Lane 1 + dst keeps each destination's send stream on its own
            // timeline row (and off the mainline lane).
            t.instant(1 + dst as u32, EventKind::ChunkSend, dst as u64, wire_bytes as u64);
        }
        self.send_packet(dst, tag, wire_bytes, payload);
    }

    /// Sends a shared (refcounted) `Vec<T>` to `dst`. The collectives use
    /// this to ship one payload to `p − 1` receivers without cloning the
    /// data per receiver; each send is still charged full wire bytes, so
    /// the network accounting is identical to an owned [`send_vec`].
    ///
    /// This machine's trace sink, if the run is traced (used by
    /// [`RequestBuffer`](crate::buffer::RequestBuffer) to mark flushes).
    pub(crate) fn trace(&self) -> Option<&Arc<MachineTrace>> {
        self.trace.as_ref()
    }

    /// [`send_vec`]: CommSender::send_vec
    // analyze: allow(hot-path-alloc): boxed wire envelope (see send_vec).
    pub fn send_shared_vec<T: Send + Sync + 'static>(
        &self,
        dst: usize,
        tag: Tag,
        data: std::sync::Arc<Vec<T>>,
    ) {
        let wire_bytes = std::mem::size_of::<T>() * data.len();
        self.send_packet(dst, tag, wire_bytes, Box::new(data));
    }

    // analyze: allow(panic-surface): dst is a machine id < p and a dropped
    // fabric receiver means a peer died mid-step — crash, don't hang.
    fn send_packet(&self, dst: usize, tag: Tag, wire_bytes: usize, payload: Box<dyn Any + Send>) {
        // Once any machine has failed, the run is unwinding: drop the
        // packet on the floor instead of racing the victim's receiver
        // teardown (and never let a worker task's send panic usurp the
        // primary failure). The checker's abort flag covers plain panics
        // (set by `MachineCtx`'s drop guard before the victim's receiver
        // goes away); the injector's covers plan-driven kills/timeouts.
        if self.checker.aborted() {
            return;
        }
        if let Some(f) = &self.fault {
            if f.is_aborted() {
                return;
            }
        }
        if dst != self.id {
            self.stats.record_packet(wire_bytes, dst);
        }
        self.checker.packet_sent(self.id, dst, tag);
        let sent = self.links[dst].send(Packet {
            src: self.id,
            tag,
            wire_bytes,
            payload,
        });
        if sent.is_err() && self.fault.is_none() && !self.checker.aborted() {
            // A send error with no abort in flight is a protocol bug (a
            // machine returned while peers still address it), not a fault
            // injection: keep the loud crash. When the abort flag is up the
            // receiver's teardown is expected; the caller unwinds via its
            // next controlled receive or barrier wait instead.
            panic!("fabric receiver dropped — machine exited early");
        }
    }
}

/// A machine's full communication manager: the send half plus the inbox
/// and mailbox for tag-matched receives.
pub struct CommManager {
    sender: CommSender,
    inbox: Receiver<Packet>,
    /// Early arrivals parked until something asks for their tag.
    mailbox: HashMap<Tag, VecDeque<Packet>>,
    /// The run's abort/timeout control plane (the cluster barrier);
    /// `None` for standalone fabrics, which keep the legacy blocking
    /// receive.
    control: Option<Arc<ClusterBarrier>>,
    /// Mailbox drain counter (the event index mailbox-reorder decisions
    /// derive from).
    recv_seq: u64,
}

impl CommManager {
    /// Wires up a full fabric for `p` machines, returning one manager per
    /// machine.
    pub fn fabric(p: usize, stats: SharedCommStats) -> Vec<CommManager> {
        Self::fabric_with_faults(p, stats, None)
    }

    /// [`CommManager::fabric`], with the run's fault plane attached to
    /// every sender (pass `None` for a fault-free fabric).
    pub fn fabric_with_faults(
        p: usize,
        stats: SharedCommStats,
        fault: Option<Arc<FaultInjector>>,
    ) -> Vec<CommManager> {
        let checker = Arc::new(ProtocolChecker::new(p));
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = crossbeam::channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(id, inbox)| CommManager {
                sender: CommSender {
                    id,
                    links: txs.clone(),
                    stats: stats.clone(),
                    checker: checker.clone(),
                    trace: None,
                    fault: fault.clone(),
                },
                inbox,
                mailbox: HashMap::new(),
                control: None,
                recv_seq: 0,
            })
            .collect()
    }

    /// The fabric-wide protocol checker shared by every machine's manager.
    pub fn checker(&self) -> &Arc<ProtocolChecker> {
        &self.sender.checker
    }

    /// Attaches this machine's trace sink. Must run before
    /// [`CommManager::sender`] hands out clones (sender clones snapshot
    /// the sink); [`MachineCtx::new`](crate::machine::MachineCtx) does so.
    pub(crate) fn set_trace(&mut self, trace: Arc<MachineTrace>) {
        self.sender.trace = Some(trace);
    }

    /// Attaches the run's control plane (the cluster barrier), arming the
    /// abort-aware, timeout-bounded receive path.
    /// [`MachineCtx::new`](crate::machine::MachineCtx) does so for cluster
    /// runs; standalone fabrics stay on the legacy path.
    pub(crate) fn set_control(&mut self, control: Arc<ClusterBarrier>) {
        self.control = Some(control);
    }

    /// The run's fault plane, if a plan is armed.
    pub(crate) fn fault(&self) -> Option<&Arc<FaultInjector>> {
        self.sender.fault.as_ref()
    }

    /// Records a packet being handed to its consumer (checker bookkeeping;
    /// a no-op unless the checker is compiled in).
    fn note_delivered(&self, pkt: &Packet) {
        self.sender
            .checker
            .packet_delivered(pkt.src, self.sender.id, pkt.tag);
    }

    /// This machine's id.
    pub fn id(&self) -> usize {
        self.sender.id
    }

    /// Number of machines on the fabric.
    pub fn num_machines(&self) -> usize {
        self.sender.num_machines()
    }

    /// A clonable send handle (for send-while-receive patterns).
    // analyze: allow(hot-path-alloc): O(1) handle clone, taken once per
    // collective to enable send-while-receive — not per element.
    pub fn sender(&self) -> CommSender {
        self.sender.clone()
    }

    /// Sends an owned `Vec<T>` to `dst`.
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        self.sender.send_vec(dst, tag, data)
    }

    /// Sends a single owned value to `dst`.
    pub fn send_value<T: Send + 'static>(&self, dst: usize, tag: Tag, value: T) {
        self.sender.send_value(dst, tag, value)
    }

    /// Takes one parked packet with `tag` from the mailbox. FIFO, unless
    /// the fault plane reorders the drain of a multi-entry queue.
    fn take_parked(&mut self, tag: Tag) -> Option<Packet> {
        let len = self.mailbox.get(&tag).map_or(0, |q| q.len());
        if len == 0 {
            return None;
        }
        let pick = match &self.sender.fault {
            Some(f) if len > 1 => {
                let seq = self.recv_seq;
                self.recv_seq += 1;
                f.mailbox_pick(self.sender.id, len, seq)
            }
            _ => 0,
        };
        self.mailbox.get_mut(&tag).and_then(|q| q.remove(pick))
    }

    /// Receives the next packet with `tag` from any source, blocking.
    /// Panics after two minutes (protocol bug guard); in a cluster run
    /// with an armed [`FaultPlan`](crate::fault::FaultPlan), the plan's
    /// `step_timeout` applies instead and elapses into a structured abort
    /// rather than a plain panic.
    pub fn recv_packet(&mut self, tag: Tag) -> Packet {
        if let Some(f) = self.sender.fault.as_ref() {
            // Mainline fault point: the plan's kill fires here.
            f.fault_point(self.sender.id);
        }
        if let Some(pkt) = self.take_parked(tag) {
            self.note_delivered(&pkt);
            return pkt;
        }
        // analyze: allow(hot-path-alloc): one Arc refcount bump per
        // receive — the control handle must be detached from `self` before
        // the mutable receive loop below can borrow the mailbox.
        match self.control.clone() {
            None => self.recv_packet_legacy(tag),
            Some(ctrl) => self.recv_packet_controlled(tag, ctrl),
        }
    }

    // analyze: allow(panic-surface): a two-minute starved receive means the
    // SPMD protocol is broken (mismatched collective order) — crash with
    // the mailbox contents, don't hang.
    // analyze: allow(hot-path-alloc): the only allocation is the parked-
    // tag listing assembled for the timeout panic diagnostic.
    fn recv_packet_legacy(&mut self, tag: Tag) -> Packet {
        loop {
            let pkt = self.inbox.recv_timeout(RECV_TIMEOUT).unwrap_or_else(|_| {
                let mut parked: Vec<Tag> = self
                    .mailbox
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&t, _)| t)
                    .collect();
                parked.sort();
                panic!(
                    "machine {}: timed out waiting for tag {tag:?} \
                     (mailbox holds tags {parked:?})",
                    self.sender.id
                )
            });
            if pkt.tag == tag {
                self.note_delivered(&pkt);
                return pkt;
            }
            self.mailbox.entry(pkt.tag).or_default().push_back(pkt);
        }
    }

    /// The abort-aware receive of a cluster run: polls in short slices so
    /// a peer's failure unwinds this machine promptly, and bounds the
    /// total wait by the plan's `step_timeout` (legacy two minutes
    /// otherwise). A timeout aborts the whole run and panics with a typed
    /// [`InjectedFailure::Timeout`] payload, which
    /// [`Cluster::try_run`](crate::cluster::Cluster::try_run) converts
    /// into a structured error.
    fn recv_packet_controlled(&mut self, tag: Tag, ctrl: Arc<ClusterBarrier>) -> Packet {
        let timeout = self
            .sender
            .fault
            .as_ref()
            .and_then(|f| f.recv_timeout())
            .unwrap_or(RECV_TIMEOUT);
        let deadline = Instant::now() + timeout;
        let slice = (timeout / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
        loop {
            if ctrl.is_aborted() {
                std::panic::panic_any(InjectedFailure::PeerAborted);
            }
            match self.inbox.recv_timeout(slice) {
                Ok(pkt) => {
                    if pkt.tag == tag {
                        self.note_delivered(&pkt);
                        return pkt;
                    }
                    self.mailbox.entry(pkt.tag).or_default().push_back(pkt);
                }
                Err(_) => {
                    if Instant::now() >= deadline {
                        // This machine is starved past the step budget: a
                        // peer died or stalled. Abort the run (waking every
                        // barrier waiter), disarm the quiescence checks
                        // (an aborted run legitimately strands custody),
                        // and unwind with a typed payload.
                        ctrl.abort();
                        self.sender.checker.set_aborted();
                        std::panic::panic_any(InjectedFailure::Timeout {
                            machine: self.sender.id,
                            context: format!("waiting for tag {tag:?}"),
                        });
                    }
                }
            }
        }
    }

    /// Non-blocking receive of any already-delivered packet with `tag`.
    pub fn try_recv_packet(&mut self, tag: Tag) -> Option<Packet> {
        if let Some(pkt) = self.take_parked(tag) {
            self.note_delivered(&pkt);
            return Some(pkt);
        }
        while let Ok(pkt) = self.inbox.try_recv() {
            if pkt.tag == tag {
                self.note_delivered(&pkt);
                return Some(pkt);
            }
            self.mailbox.entry(pkt.tag).or_default().push_back(pkt);
        }
        None
    }

    /// Receives a `Vec<T>` with `tag` from any source; returns `(src, data)`.
    pub fn recv_vec<T: Send + 'static>(&mut self, tag: Tag) -> (usize, Vec<T>) {
        let pkt = self.recv_packet(tag);
        (pkt.src, downcast_payload(pkt.payload, pkt.tag))
    }

    /// Receives a single value with `tag` from any source.
    pub fn recv_value<T: Send + 'static>(&mut self, tag: Tag) -> (usize, T) {
        let pkt = self.recv_packet(tag);
        (pkt.src, downcast_value(pkt.payload, pkt.tag))
    }

    /// Receives a shared `Vec<T>` (sent with
    /// [`CommSender::send_shared_vec`]) and resolves it to an owned vector:
    /// the last receiver to drop its handle takes the allocation for free,
    /// everyone else clones locally — at most one clone per receiver
    /// instead of `p − 1` clones on the sender.
    // analyze: allow(hot-path-alloc): the clone is this collective's
    // documented fallback — the last receiver takes the allocation for
    // free, earlier receivers clone once locally instead of the sender
    // cloning p-1 times.
    pub fn recv_shared_vec<T: Clone + Send + Sync + 'static>(&mut self, tag: Tag) -> (usize, Vec<T>) {
        let pkt = self.recv_packet(tag);
        let src = pkt.src;
        let shared: std::sync::Arc<Vec<T>> = downcast_value(pkt.payload, pkt.tag);
        let data = std::sync::Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone());
        (src, data)
    }
}

/// Unwraps a payload known to be `Vec<T>`.
pub fn downcast_payload<T: 'static>(payload: Box<dyn Any + Send>, tag: Tag) -> Vec<T> {
    *payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
        panic!(
            "payload type mismatch for tag {tag:?}: expected Vec<{}>",
            std::any::type_name::<T>()
        )
    })
}

/// Unwraps a payload known to be `T`.
pub fn downcast_value<T: 'static>(payload: Box<dyn Any + Send>, tag: Tag) -> T {
    *payload.downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "payload type mismatch for tag {tag:?}: expected {}",
            std::any::type_name::<T>()
        )
    })
}

impl Packet {
    /// Consumes the packet, returning its typed `Vec<T>` payload.
    pub fn into_vec<T: 'static>(self) -> Vec<T> {
        downcast_payload(self.payload, self.tag)
    }

    /// Consumes the packet, returning its typed value payload.
    pub fn into_value<T: 'static>(self) -> T {
        downcast_value(self.payload, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CommStats;
    use std::sync::Arc;

    fn fabric2() -> Vec<CommManager> {
        CommManager::fabric(2, Arc::new(CommStats::new(2, Default::default())))
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut f = fabric2();
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(0, 1);
        m1.send_vec(0, tag, vec![1u64, 2, 3]);
        let (src, data) = m0.recv_vec::<u64>(tag);
        assert_eq!(src, 1);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn mailbox_holds_out_of_order_tags() {
        let mut f = fabric2();
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let early = Tag::user(0, 2);
        let wanted = Tag::user(0, 1);
        m1.send_vec(0, early, vec![9u8]);
        m1.send_vec(0, wanted, vec![7u8]);
        let (_, first) = m0.recv_vec::<u8>(wanted);
        assert_eq!(first, vec![7]);
        let (_, second) = m0.recv_vec::<u8>(early);
        assert_eq!(second, vec![9]);
    }

    #[test]
    fn self_send_not_charged() {
        let stats = Arc::new(CommStats::new(2, Default::default()));
        let mut f = CommManager::fabric(2, stats.clone());
        let _m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(1, 0);
        m0.send_vec(0, tag, vec![1u32, 2]);
        let (src, v) = m0.recv_vec::<u32>(tag);
        assert_eq!(src, 0);
        assert_eq!(v, vec![1, 2]);
        assert_eq!(stats.summary().bytes_sent, 0);
    }

    #[test]
    fn remote_send_charged_by_size() {
        let stats = Arc::new(CommStats::new(2, Default::default()));
        let mut f = CommManager::fabric(2, stats.clone());
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(2, 0);
        m1.send_vec(0, tag, vec![0u64; 100]);
        let _ = m0.recv_vec::<u64>(tag);
        assert_eq!(stats.summary().bytes_sent, 800);
        assert_eq!(stats.summary().messages_sent, 1);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mut f = fabric2();
        let _m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        assert!(m0.try_recv_packet(Tag::user(0, 0)).is_none());
    }

    #[test]
    fn value_roundtrip() {
        let mut f = fabric2();
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(3, 7);
        m1.send_value(0, tag, (42usize, 99u64));
        let (src, v) = m0.recv_value::<(usize, u64)>(tag);
        assert_eq!(src, 1);
        assert_eq!(v, (42, 99));
    }

    #[test]
    fn offset_chunk_roundtrip_counts_and_charges() {
        let stats = Arc::new(CommStats::new(2, Default::default()));
        let mut f = CommManager::fabric(2, stats.clone());
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(5, 0);
        m1.sender().send_offset_chunk(0, tag, 17, vec![1u64, 2, 3]);
        let (src, (offset, data)) = m0.recv_value::<(usize, Vec<u64>)>(tag);
        assert_eq!((src, offset), (1, 17));
        assert_eq!(data, vec![1, 2, 3]);
        let s = stats.summary();
        assert_eq!(s.bytes_sent, 3 * 8 + 8);
        assert_eq!(s.exchange.chunks_sent, 1);
    }

    #[test]
    fn shared_vec_roundtrip_charged_full_bytes() {
        let stats = Arc::new(CommStats::new(2, Default::default()));
        let mut f = CommManager::fabric(2, stats.clone());
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(6, 0);
        let payload = Arc::new(vec![7u32; 50]);
        m1.sender().send_shared_vec(0, tag, payload.clone());
        let (src, data) = m0.recv_shared_vec::<u32>(tag);
        assert_eq!(src, 1);
        assert_eq!(data, *payload);
        // Accounting matches an owned send of the same vector.
        assert_eq!(stats.summary().bytes_sent, 50 * 4);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn type_mismatch_panics() {
        let mut f = fabric2();
        let m1 = f.pop().unwrap();
        let mut m0 = f.pop().unwrap();
        let tag = Tag::user(4, 0);
        m1.send_vec(0, tag, vec![1u64]);
        let _ = m0.recv_vec::<u32>(tag);
    }
}
