//! Integration tests for checker → trace wiring: every protocol-checker
//! diagnostic must land in the run's trace as a [`EventKind::Checker`]
//! instant *before* the panic unwinds, so a post-mortem
//! [`TraceCollector::collect`] shows what the checker saw even though the
//! run died.
//!
//! Like `tests/checker.rs`, this file only exists when the checker hooks
//! are compiled in (debug builds or the `checker` feature).

#![cfg(any(debug_assertions, feature = "checker"))]

use pgxd::checker::ProtocolChecker;
use pgxd::comm::Tag;
use pgxd::trace::{violation, EventKind, TraceCollector, TraceConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A one-machine collector/checker pair with the trace sink attached.
fn traced_checker() -> (TraceCollector, ProtocolChecker) {
    let collector = TraceCollector::new(1, 2, TraceConfig::enabled().ring_capacity(64));
    let checker = ProtocolChecker::new(1);
    checker.attach_trace(0, collector.machine(0));
    (collector, checker)
}

/// Codes of the checker events machine 0 recorded, in emission order.
fn checker_codes(collector: TraceCollector) -> Vec<u64> {
    let log = collector.collect();
    log.events_of_kind(EventKind::Checker).map(|e| e.a).collect()
}

#[test]
fn phantom_delivery_event_recorded_before_panic() {
    let (collector, checker) = traced_checker();
    // Delivery with no matching send: the checker must emit the event,
    // then panic — the adjacent `#[should_panic]` shape, but catching the
    // unwind so the rings can be drained afterwards.
    let err = catch_unwind(AssertUnwindSafe(|| {
        checker.packet_delivered(0, 0, Tag::user(3, 3));
    }))
    .expect_err("phantom delivery must panic");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("never sent"), "unexpected panic: {msg}");
    assert_eq!(checker_codes(collector), vec![violation::PHANTOM_DELIVERY]);
}

#[test]
fn double_release_event_recorded_before_panic() {
    let (collector, checker) = traced_checker();
    checker.chunk_acquired(0, 0xbeef0, 128);
    checker.chunk_released(0, 0xbeef0, 128, true);
    let err = catch_unwind(AssertUnwindSafe(|| {
        checker.chunk_released(0, 0xbeef0, 128, true);
    }))
    .expect_err("double release must panic");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("double-released"), "unexpected panic: {msg}");
    assert_eq!(checker_codes(collector), vec![violation::DOUBLE_RELEASE]);
}

#[test]
fn quiescence_verdicts_recorded_before_panic() {
    let (collector, checker) = traced_checker();
    checker.packet_sent(0, 0, Tag::user(5, 5));
    let err = catch_unwind(AssertUnwindSafe(|| {
        checker.check_quiescent("test barrier", Some(0));
    }))
    .expect_err("undelivered packet must panic");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("undelivered packet"), "unexpected panic: {msg}");
    assert_eq!(
        checker_codes(collector),
        vec![violation::UNDELIVERED_PACKETS]
    );
}

#[test]
fn offset_ledger_violations_recorded_before_panic() {
    let (collector, checker) = traced_checker();
    // A ledger minted by the checker inherits machine 0's trace sink.
    let mut ledger = checker.offset_ledger(0, Tag::user(4, 4), 10);
    ledger.record(0, 6);
    ledger.record(4, 6); // [4, 10) overlaps [0, 6)
    let err = catch_unwind(AssertUnwindSafe(move || ledger.finish()))
        .expect_err("overlapping offsets must panic");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("overlapping offset"), "unexpected panic: {msg}");
    assert_eq!(checker_codes(collector), vec![violation::OFFSET_OVERLAP]);
}

#[test]
fn clean_checker_run_records_no_checker_events() {
    let (collector, checker) = traced_checker();
    checker.packet_sent(0, 0, Tag::user(6, 6));
    checker.packet_delivered(0, 0, Tag::user(6, 6));
    checker.chunk_acquired(0, 0xf00d0, 64);
    checker.chunk_released(0, 0xf00d0, 64, false);
    checker.check_quiescent("teardown", None);
    assert!(checker_codes(collector).is_empty());
}

#[test]
fn checker_events_name_their_violation_in_exports() {
    let (collector, checker) = traced_checker();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        checker.packet_delivered(0, 0, Tag::user(9, 9));
    }));
    let log = collector.collect();
    let json = log.to_chrome_json();
    assert!(
        json.contains("checker:phantom_delivery"),
        "chrome export should carry the human-readable violation label"
    );
    assert!(log.to_jsonl().contains("checker:phantom_delivery"));
}
