//! Memtrack-based regression test for the exchange pipeline: once the
//! chunk pool is warm, an exchange's allocation churn is dominated by its
//! (unavoidable) output buffer — chunk backing stores circulate through
//! the pool instead of being reallocated, so steady-state churn does not
//! grow with the chunk count.
//!
//! This binary installs the tracking allocator globally, so everything it
//! measures includes the cluster's machine threads. All measurements live
//! in one `#[test]` — the counters are process-global.

use pgxd::cluster::{Cluster, ClusterConfig};

#[global_allocator]
static GLOBAL: pgxd_memtrack::TrackingAlloc = pgxd_memtrack::TrackingAlloc;

const P: usize = 4;
const N_PER_MACHINE: usize = 64 * 1024; // u64 keys
const MEASURED_ROUNDS: usize = 4;

/// Runs `1 + MEASURED_ROUNDS` identical all-to-all exchanges inside one
/// cluster (so the pool stays warm across rounds) and returns
/// `(steady_state_churn_bytes, pool_hits, pool_misses)`, where churn is
/// the cumulative allocation of the measured rounds on all machines and
/// the hit/miss counters are deltas over the same window.
fn measure(buffer_bytes: usize, legacy: bool) -> (usize, u64, u64) {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    static CHURN: AtomicUsize = AtomicUsize::new(0);
    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);

    let cluster = Cluster::new(
        ClusterConfig::new(P)
            .buffer_bytes(buffer_bytes)
            .workers_per_machine(2),
    );
    cluster.run(|ctx| {
        let data: Vec<u64> = (0..N_PER_MACHINE as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) ^ ctx.id() as u64)
            .collect();
        // Even split across machines.
        let per_dst = N_PER_MACHINE / P;
        let offsets: Vec<usize> = (0..=P).map(|j| j * per_dst).collect();
        let exchange = |ctx: &mut pgxd::MachineCtx| {
            if legacy {
                ctx.exchange_by_offsets_legacy(&data, &offsets)
            } else {
                ctx.exchange_by_offsets(&data, &offsets)
            }
        };

        // Warm-up round fills the pool (all misses land here).
        let _ = exchange(ctx);
        ctx.barrier();
        let before_alloc = pgxd_memtrack::total_allocated_bytes();
        let before_ex = ctx.comm_summary().exchange;
        ctx.barrier();
        for _ in 0..MEASURED_ROUNDS {
            let _ = exchange(ctx);
        }
        ctx.barrier();
        if ctx.is_master() {
            CHURN.store(
                pgxd_memtrack::total_allocated_bytes() - before_alloc,
                Ordering::SeqCst,
            );
            let ex = ctx.comm_summary().exchange.delta_since(&before_ex);
            HITS.store(ex.pool_hits, Ordering::SeqCst);
            MISSES.store(ex.pool_misses, Ordering::SeqCst);
        }
        ctx.barrier();
    });
    (
        CHURN.load(std::sync::atomic::Ordering::SeqCst),
        HITS.load(std::sync::atomic::Ordering::SeqCst),
        MISSES.load(std::sync::atomic::Ordering::SeqCst),
    )
}

#[test]
fn steady_state_exchange_allocation_is_pooled_and_chunk_count_independent() {
    // Unavoidable per-round allocation: every machine's assembled output.
    let out_bytes_per_round = P * N_PER_MACHINE * std::mem::size_of::<u64>();
    let budget = |factor: f64| (out_bytes_per_round as f64 * factor) as usize;

    // 8 KiB buffers: 1024 keys per chunk.
    let (churn_8k, hits, misses) = measure(8 * 1024, false);
    let per_round_8k = churn_8k / MEASURED_ROUNDS;
    assert!(
        per_round_8k < budget(1.4),
        "pooled exchange churns {per_round_8k} B/round, expected < {} B \
         (output-dominated; chunk buffers must come from the pool)",
        budget(1.4)
    );

    // With a warm pool, acquires are served from recycled buffers.
    let total = hits + misses;
    assert!(total > 0, "exchange recorded no pool activity");
    assert!(
        hits as f64 / total as f64 > 0.8,
        "steady-state pool hit rate {hits}/{total} below 80%"
    );

    // 2 KiB buffers: 4× the chunk count must not change steady-state
    // churn materially — allocation is per-exchange, not per-chunk.
    let (churn_2k, _, _) = measure(2 * 1024, false);
    let per_round_2k = churn_2k / MEASURED_ROUNDS;
    assert!(
        per_round_2k < budget(1.4),
        "4x chunk count grew steady-state churn to {per_round_2k} B/round"
    );

    // The legacy path allocates a fresh buffer per chunk: its churn must
    // sit clearly above the pooled bound, or this test proves nothing.
    let (churn_legacy, _, _) = measure(8 * 1024, true);
    let per_round_legacy = churn_legacy / MEASURED_ROUNDS;
    assert!(
        per_round_legacy > budget(1.5),
        "legacy exchange churn {per_round_legacy} B/round unexpectedly low — \
         the regression bound needs retuning"
    );
}
