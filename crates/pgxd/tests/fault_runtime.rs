//! Integration tests for the deterministic fault-injection plane.
//!
//! These exercise the runtime alone (no datagen / sorter): the
//! offset-addressed exchange must stay exactly correct under every fault
//! preset, the same seed must replay the same schedule, a killed machine
//! must surface as a structured [`RunError`] from [`Cluster::try_run`]
//! (never a hang), and a disabled plan must change nothing.

use std::time::{Duration, Instant};

use pgxd::cluster::{Cluster, ClusterConfig, RunReport};
use pgxd::fault::FaultPlan;
use pgxd::RunErrorKind;

/// Deterministic per-machine shards: sorted runs, uneven lengths.
fn shards(p: usize) -> Vec<Vec<u64>> {
    (0..p)
        .map(|m| (0..(m * 53 + 211) as u64).map(|i| i * 3 + m as u64).collect())
        .collect()
}

/// Runs one offset-addressed exchange under `plan` and returns the report.
/// Small buffers force many chunks so per-chunk faults actually fire.
fn exchange_under(plan: FaultPlan) -> RunReport<(Vec<u64>, Vec<usize>)> {
    let p = 4;
    let shards = shards(p);
    let cluster = Cluster::new(
        ClusterConfig::new(p)
            .workers_per_machine(2)
            .buffer_bytes(64)
            .fault(plan),
    );
    let shards_ref = &shards;
    cluster.run(|ctx| {
        let data = shards_ref[ctx.id()].clone();
        // Even cuts; the last machine takes the remainder.
        let per = data.len() / ctx.num_machines();
        let mut offsets: Vec<usize> = (0..ctx.num_machines()).map(|d| d * per).collect();
        offsets.push(data.len());
        ctx.exchange_by_offsets(&data, &offsets)
    })
}

/// The exchange invariants that must hold under any non-killing plan:
/// global multiset preserved, per-source runs contiguous and sorted.
fn assert_exchange_exact(report: &RunReport<(Vec<u64>, Vec<usize>)>, p: usize) {
    let mut received: Vec<u64> = report.results.iter().flat_map(|(out, _)| out.clone()).collect();
    let mut sent: Vec<u64> = shards(p).concat();
    received.sort_unstable();
    sent.sort_unstable();
    assert_eq!(received, sent, "global multiset changed under faults");
    for (out, bounds) in &report.results {
        assert_eq!(bounds.len(), p + 1);
        assert_eq!(*bounds.last().unwrap(), out.len());
        for w in bounds.windows(2) {
            let run = &out[w[0]..w[1]];
            assert!(run.windows(2).all(|x| x[0] <= x[1]), "source run reordered");
        }
    }
}

#[test]
fn exchange_exact_under_every_preset() {
    for (name, plan) in [
        ("delays", FaultPlan::delays(7)),
        ("reorders", FaultPlan::reorders(7)),
        ("drops", FaultPlan::drops(7)),
        ("straggler", FaultPlan::straggler(7, 1)),
        ("chaos", FaultPlan::chaos(7)),
    ] {
        let report = exchange_under(plan);
        assert_exchange_exact(&report, 4);
        assert!(plan.is_armed(), "{name} preset should be armed");
    }
}

#[test]
fn same_seed_same_schedule_same_outputs() {
    // The determinism contract: every fault decision derives from
    // (seed, site, stream, seq), so two runs of the same plan must
    // produce identical outputs AND identical traffic accounting.
    for seed in [1u64, 42, 0xdead_beef] {
        let a = exchange_under(FaultPlan::chaos(seed));
        let b = exchange_under(FaultPlan::chaos(seed));
        assert_eq!(a.results, b.results, "seed {seed}: outputs diverged");
        assert_eq!(
            a.comm.exchange.chunks_sent, b.comm.exchange.chunks_sent,
            "seed {seed}: chunk schedule diverged"
        );
        assert_eq!(a.comm.bytes_sent, b.comm.bytes_sent);
        assert_eq!(a.comm.messages_sent, b.comm.messages_sent);
    }
}

#[test]
fn drops_do_not_change_chunk_totals() {
    // Drop-with-redelivery parks chunks and flushes them at stream end;
    // accounting happens at the actual send, so totals match a fault-free
    // run — nothing is ever lost or double-counted.
    let clean = exchange_under(FaultPlan::disabled());
    let dropped = exchange_under(FaultPlan::enabled(9).drop_chunks(500, 64));
    assert_eq!(clean.comm.exchange.chunks_sent, dropped.comm.exchange.chunks_sent);
    assert_eq!(clean.comm.bytes_sent, dropped.comm.bytes_sent);
}

#[test]
fn disabled_plan_is_identical_to_no_plan() {
    let p = 3;
    let shards = shards(p);
    let run = |cfg: ClusterConfig| {
        let shards_ref = &shards;
        Cluster::new(cfg).run(|ctx| {
            let data = shards_ref[ctx.id()].clone();
            let n = data.len();
            let offsets: Vec<usize> =
                (0..=ctx.num_machines()).map(|d| d * n / ctx.num_machines()).collect();
            ctx.exchange_by_offsets(&data, &offsets)
        })
    };
    let plain = run(ClusterConfig::new(p).buffer_bytes(64));
    let explicit = run(ClusterConfig::new(p).buffer_bytes(64).fault(FaultPlan::disabled()));
    assert_eq!(plain.results, explicit.results);
    assert_eq!(plain.comm.exchange.chunks_sent, explicit.comm.exchange.chunks_sent);
    assert_eq!(plain.comm.bytes_sent, explicit.comm.bytes_sent);
}

#[test]
fn killed_machine_yields_structured_error_within_timeout() {
    let p = 4;
    let shards = shards(p);
    let plan = FaultPlan::enabled(3)
        .kill(1, 2)
        .step_timeout(Duration::from_secs(5));
    let cluster = Cluster::new(ClusterConfig::new(p).buffer_bytes(64).fault(plan));
    let shards_ref = &shards;
    let started = Instant::now();
    let err = cluster
        .try_run(|ctx| {
            let data = shards_ref[ctx.id()].clone();
            let n = data.len();
            let offsets: Vec<usize> =
                (0..=ctx.num_machines()).map(|d| d * n / ctx.num_machines()).collect();
            ctx.exchange_by_offsets(&data, &offsets)
        })
        .expect_err("kill plan must fail the run");
    let elapsed = started.elapsed();
    assert_eq!(err.kind, RunErrorKind::InjectedKill);
    assert_eq!(err.machine, Some(1));
    assert!(
        elapsed < Duration::from_secs(30),
        "survivors must unwind promptly, took {elapsed:?}"
    );
    // Survivors that die sympathetically are reported, not counted as the
    // primary failure.
    assert!(err.peer_aborts < p);
    if cfg!(debug_assertions) {
        // Checker stands down on abort but reports what was stranded.
        assert!(err.residual.is_some());
    }
    let msg = err.to_string();
    assert!(msg.contains("killed machine 1"), "unexpected message: {msg}");
}

#[test]
fn hung_barrier_converts_to_step_timeout_error() {
    // Machine 0 never arrives at the barrier; the configured step timeout
    // must convert the hang into a structured error, fast.
    let plan = FaultPlan::enabled(5).step_timeout(Duration::from_millis(300));
    let cluster = Cluster::new(ClusterConfig::new(3).fault(plan));
    let started = Instant::now();
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() != 0 {
                ctx.barrier();
            }
            ctx.id()
        })
        .expect_err("missing machine must time the barrier out");
    assert_eq!(err.kind, RunErrorKind::StepTimeout);
    assert!(err.machine.is_some());
    assert_ne!(err.machine, Some(0), "machine 0 exited cleanly");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout must fire near the configured bound"
    );
    assert!(err.to_string().contains("step timeout"), "{err}");
}

#[test]
fn try_run_ok_on_clean_runs() {
    let cluster = Cluster::new(ClusterConfig::new(3).fault(FaultPlan::delays(11)));
    let report = cluster
        .try_run(|ctx| {
            let rows = ctx.gather_to_master(vec![ctx.id() as u64]);
            ctx.barrier();
            rows.map(|r| r.concat().iter().sum::<u64>())
        })
        .expect("benign plan must not fail the run");
    assert_eq!(report.results[0], Some(3));
}

#[test]
fn collectives_survive_chaos() {
    // The fault plane hooks recv_packet, so every collective sees it.
    let plan = FaultPlan::chaos(21);
    let cluster = Cluster::new(ClusterConfig::new(5).workers_per_machine(2).fault(plan));
    let report = cluster.run(|ctx| {
        let parts: Vec<Vec<u64>> = (0..ctx.num_machines())
            .map(|dst| vec![(ctx.id() * 100 + dst) as u64; 7])
            .collect();
        let got = ctx.all_to_all(parts);
        ctx.barrier();
        got
    });
    for (dst, received) in report.results.iter().enumerate() {
        for (src, block) in received.iter().enumerate() {
            assert_eq!(block, &vec![(src * 100 + dst) as u64; 7], "src={src} dst={dst}");
        }
    }
}
