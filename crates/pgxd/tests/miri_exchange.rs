//! Small, deterministic exercises of the exchange pipeline's unsafe code
//! — `MaybeUninit` output assembly, `ptr::copy_nonoverlapping` placement,
//! and the chunk pool's type-erased `Vec::from_raw_parts` recycling —
//! sized so `cargo miri test -p pgxd --test miri_exchange` finishes in
//! minutes. CI runs exactly that command; the same tests also run natively
//! in the normal test sweep.

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::metrics::CommStats;
use pgxd::pool::ChunkPool;
use std::sync::Arc;

#[test]
fn pool_roundtrip_and_drop_are_sound() {
    let stats = Arc::new(CommStats::default());
    let pool = ChunkPool::new(stats);
    // Mix types and capacities so hits rebuild Vecs through the erased
    // (TypeId, byte-capacity) key, then drop the pool with buffers parked.
    for round in 0..3 {
        let a: Vec<u64> = pool.acquire(16);
        let b: Vec<u32> = pool.acquire(24);
        let c: Vec<(u32, u64)> = pool.acquire(8);
        assert!(a.capacity() >= 16 && b.capacity() >= 24 && c.capacity() >= 8);
        pool.release(a);
        pool.release(b);
        if round < 2 {
            pool.release(c); // leave one type unparked on the last round
        }
    }
    assert!(pool.held_bytes() > 0);
    drop(pool); // Drop impl frees parked buffers via their drop_fn
}

#[test]
fn small_exchange_places_every_element_exactly_once() {
    // 3 machines, 2 workers, 16-byte buffers (2 u64 per chunk): enough to
    // drive worker-side sends, pooled flush/finish, and memcpy placement
    // through every unsafe block with a handful of elements.
    let p = 3;
    let cluster = Cluster::new(
        ClusterConfig::new(p).buffer_bytes(16).workers_per_machine(2),
    );
    let report = cluster.run(|ctx| {
        let id = ctx.id() as u64;
        let data: Vec<u64> = (0..9).map(|i| id * 100 + i).collect();
        let offsets = vec![0usize, 3, 6, 9];
        // Two rounds so the second runs against a warm pool.
        let _ = ctx.exchange_by_offsets(&data, &offsets);
        ctx.exchange_by_offsets(&data, &offsets)
    });
    for (m, (out, bounds)) in report.results.iter().enumerate() {
        assert_eq!(bounds, &vec![0, 3, 6, 9]);
        let expect: Vec<u64> = (0..p as u64)
            .flat_map(|src| (0..3).map(move |i| src * 100 + m as u64 * 3 + i))
            .collect();
        assert_eq!(out, &expect, "machine {m}");
    }
}

#[test]
fn exchange_with_empty_and_lopsided_ranges() {
    // Some machines send nothing to some destinations (empty chunk paths),
    // machine 2 receives nothing at all (zero-length MaybeUninit output).
    let p = 3;
    let cluster = Cluster::new(
        ClusterConfig::new(p).buffer_bytes(8).workers_per_machine(1),
    );
    let report = cluster.run(|ctx| {
        let data: Vec<u64> = (0..4).map(|i| ctx.id() as u64 * 10 + i).collect();
        // Machines 0 and 2 send everything to 1; machine 1 sends to 0.
        // Machine 2 receives nothing at all (zero-length output buffer).
        let dst = (ctx.id() + 1) % 2;
        let mut offsets = vec![0usize; p + 1];
        for (j, slot) in offsets.iter_mut().enumerate() {
            *slot = if j > dst { data.len() } else { 0 };
        }
        ctx.exchange_by_offsets(&data, &offsets)
    });
    let (out0, _) = &report.results[0];
    let (out1, _) = &report.results[1];
    let (out2, _) = &report.results[2];
    assert_eq!(out0, &vec![10, 11, 12, 13]);
    assert_eq!(out1, &vec![0, 1, 2, 3, 20, 21, 22, 23]);
    assert!(out2.is_empty());
}
