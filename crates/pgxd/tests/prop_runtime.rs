//! Property tests for the distributed runtime: collectives and the
//! offset-addressed exchange preserve data exactly for arbitrary shapes,
//! machine counts, and buffer sizes.

use pgxd::cluster::{Cluster, ClusterConfig};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_to_all_is_exact_transpose(
        p in 1usize..7,
        payload in pvec(any::<u64>(), 0..50),
    ) {
        let cluster = Cluster::new(ClusterConfig::new(p));
        let payload_ref = &payload;
        let report = cluster.run(|ctx| {
            let parts: Vec<Vec<u64>> = (0..ctx.num_machines())
                .map(|dst| {
                    payload_ref
                        .iter()
                        .map(|&x| x ^ (ctx.id() as u64) << 32 ^ dst as u64)
                        .collect()
                })
                .collect();
            ctx.all_to_all(parts)
        });
        for (dst, received) in report.results.iter().enumerate() {
            prop_assert_eq!(received.len(), p);
            for (src, block) in received.iter().enumerate() {
                let expect: Vec<u64> = payload
                    .iter()
                    .map(|&x| x ^ (src as u64) << 32 ^ dst as u64)
                    .collect();
                prop_assert_eq!(block, &expect);
            }
        }
    }

    #[test]
    fn gather_then_broadcast_roundtrips(
        p in 1usize..8,
        data in pvec(any::<u32>(), 0..40),
    ) {
        let cluster = Cluster::new(ClusterConfig::new(p));
        let data_ref = &data;
        let report = cluster.run(|ctx| {
            let mine: Vec<u32> = data_ref.iter().map(|&x| x ^ ctx.id() as u32).collect();
            let gathered = ctx.gather_to_master(mine);
            let flat = gathered.map(|rows| rows.concat());
            ctx.broadcast_from_master(flat)
        });
        let expect: Vec<u32> = (0..p)
            .flat_map(|m| data.iter().map(move |&x| x ^ m as u32))
            .collect();
        for r in &report.results {
            prop_assert_eq!(r, &expect);
        }
    }

    #[test]
    fn exchange_preserves_multiset_and_run_order(
        p in 1usize..6,
        workers in 1usize..4,
        rounds in 1usize..3,
        shard_lens in pvec(0usize..120, 1..6),
        cuts_seed in any::<u64>(),
        buffer_bytes in prop::sample::select(vec![8usize, 16, 64, 256, 256 * 1024]),
    ) {
        // Build per-machine shards of sorted data and random cut points.
        // `workers` exercises the worker-driven send path; `rounds > 1`
        // exercises a warm chunk pool (the second exchange reuses the
        // buffers the first one recycled).
        let p = p.min(shard_lens.len()).max(1);
        let shards: Vec<Vec<u64>> = (0..p)
            .map(|m| {
                let len = shard_lens[m % shard_lens.len()];
                (0..len as u64).map(|i| i * 3 + m as u64).collect()
            })
            .collect();
        let cluster = Cluster::new(
            ClusterConfig::new(p)
                .buffer_bytes(buffer_bytes)
                .workers_per_machine(workers),
        );
        let shards_ref = &shards;
        let report = cluster.run(|ctx| {
            let data = shards_ref[ctx.id()].clone();
            // Deterministic pseudo-random monotone offsets.
            let mut offsets = vec![0usize];
            let mut x = cuts_seed | 1;
            for _ in 0..ctx.num_machines() - 1 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let prev = *offsets.last().unwrap();
                offsets.push(prev + (x as usize % (data.len() - prev + 1)));
            }
            offsets.push(data.len());
            let mut result = ctx.exchange_by_offsets(&data, &offsets);
            for _ in 1..rounds {
                result = ctx.exchange_by_offsets(&data, &offsets);
            }
            result
        });

        // Global multiset preserved (per round; rounds are identical).
        let mut received_all: Vec<u64> = report
            .results
            .iter()
            .flat_map(|(out, _)| out.clone())
            .collect();
        let mut sent_all: Vec<u64> = shards.iter().flatten().copied().collect();
        received_all.sort_unstable();
        sent_all.sort_unstable();
        prop_assert_eq!(received_all, sent_all);

        // Per-source runs arrive contiguous and in source order (the data
        // was sorted per machine, so each received run must be sorted).
        for (out, bounds) in &report.results {
            prop_assert_eq!(bounds.len(), p + 1);
            prop_assert_eq!(*bounds.last().unwrap(), out.len());
            for w in bounds.windows(2) {
                let run = &out[w[0]..w[1]];
                prop_assert!(run.windows(2).all(|x| x[0] <= x[1]));
            }
        }
    }

    #[test]
    fn exchange_matches_legacy_path(
        p in 1usize..5,
        shard_len in 0usize..200,
        cuts_seed in any::<u64>(),
    ) {
        // The reworked pipeline must be observably identical to the
        // pre-rework exchange: same outputs, same source bounds.
        let shards: Vec<Vec<u64>> = (0..p)
            .map(|m| (0..shard_len as u64).map(|i| i * 5 + m as u64).collect())
            .collect();
        let run_one = |legacy: bool| {
            let cluster = Cluster::new(
                ClusterConfig::new(p).buffer_bytes(64).workers_per_machine(2),
            );
            let shards_ref = &shards;
            cluster.run(move |ctx| {
                let data = shards_ref[ctx.id()].clone();
                let mut offsets = vec![0usize];
                let mut x = cuts_seed | 1;
                for _ in 0..ctx.num_machines() - 1 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let prev = *offsets.last().unwrap();
                    offsets.push(prev + (x as usize % (data.len() - prev + 1)));
                }
                offsets.push(data.len());
                if legacy {
                    ctx.exchange_by_offsets_legacy(&data, &offsets)
                } else {
                    ctx.exchange_by_offsets(&data, &offsets)
                }
            })
        };
        let new = run_one(false);
        let old = run_one(true);
        for (n, o) in new.results.iter().zip(&old.results) {
            prop_assert_eq!(n, o);
        }
    }

    #[test]
    fn all_gather_identical_everywhere(
        p in 1usize..8,
        data in pvec(any::<u16>(), 0..30),
    ) {
        let cluster = Cluster::new(ClusterConfig::new(p));
        let data_ref = &data;
        let report = cluster.run(|ctx| {
            let mine: Vec<u16> = data_ref
                .iter()
                .map(|&x| x.wrapping_add(ctx.id() as u16))
                .collect();
            ctx.all_gather(mine)
        });
        let reference = &report.results[0];
        for r in &report.results {
            prop_assert_eq!(r, reference);
        }
        prop_assert_eq!(reference.len(), p);
    }
}

#[test]
fn exchange_stress_many_small_buffers() {
    // Deterministic stress: 6 machines, 1-element buffer chunks, uneven
    // shards — maximal chunk fragmentation.
    let p = 6;
    let shards: Vec<Vec<u64>> = (0..p)
        .map(|m| (0..(m * 37 + 11) as u64).map(|i| i * 7 + m as u64).collect())
        .collect();
    let cluster = Cluster::new(ClusterConfig::new(p).buffer_bytes(8));
    let shards_ref = &shards;
    let report = cluster.run(|ctx| {
        let data = shards_ref[ctx.id()].clone();
        // Send everything to machine (id+1) % p.
        let dst = (ctx.id() + 1) % 6;
        let mut offsets = vec![0usize; 7];
        for (j, slot) in offsets.iter_mut().enumerate() {
            *slot = if j > dst { data.len() } else { 0 };
        }
        ctx.exchange_by_offsets(&data, &offsets)
    });
    for (m, (out, _)) in report.results.iter().enumerate() {
        let src = (m + 6 - 1) % 6;
        assert_eq!(out, &shards[src], "machine {m}");
    }
    // One message per element plus count traffic.
    assert!(report.comm.messages_sent as usize > shards.iter().map(|s| s.len()).sum::<usize>() / 2);
}
