//! Miri exercises dedicated to the chunk pool's unsafe core — the
//! type-erased `RawChunk` custody (`Vec::from_raw_parts` rebuilds, the
//! `drop_fn` erased dropper, `ManuallyDrop` in release) — beyond what the
//! exchange-level `miri_exchange.rs` reaches. Sized so
//! `cargo miri test -p pgxd --test miri_pool` finishes in minutes; the
//! same tests also run natively in the normal sweep.

use pgxd::metrics::CommStats;
use pgxd::pool::ChunkPool;
use std::sync::Arc;

fn pool() -> (ChunkPool, Arc<CommStats>) {
    let stats = Arc::new(CommStats::default());
    (ChunkPool::new(stats.clone()), stats)
}

#[test]
fn cross_thread_recycling_is_sound() {
    // Sender threads acquire, receiver-style threads release: chunks are
    // rebuilt into Vecs on a different thread than the one that parked
    // them, which is exactly what the exchange does.
    let (pool, stats) = pool();
    let pool = Arc::new(pool);
    std::thread::scope(|s| {
        for t in 0..3 {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..20u64 {
                    let mut v: Vec<u64> = pool.acquire(8);
                    v.extend([t as u64, i]);
                    pool.release(v);
                }
            });
        }
    });
    let ex = stats.exchange.summary();
    assert_eq!(ex.pool_hits + ex.pool_misses, 60);
}

#[test]
fn mixed_types_and_alignments_rebuild_correctly() {
    // u8 (align 1), u64 (align 8), and a padded tuple: each must round-trip
    // through the erased (TypeId, byte-capacity) key without Miri seeing an
    // alignment or provenance violation.
    let (pool, _) = pool();
    for _ in 0..4 {
        let mut bytes: Vec<u8> = pool.acquire(13);
        bytes.extend([1, 2, 3]);
        let mut words: Vec<u64> = pool.acquire(5);
        words.extend([u64::MAX, 0]);
        let mut pairs: Vec<(u32, u64)> = pool.acquire(3);
        pairs.push((7, 9));
        pool.release(bytes);
        pool.release(pairs);
        pool.release(words);
    }
    let v: Vec<u64> = pool.acquire(2);
    assert!(v.is_empty() && v.capacity() >= 2);
    pool.release(v);
}

#[test]
fn drop_with_parked_buffers_frees_everything() {
    // The Drop impl walks every shard and frees parked chunks through
    // their erased drop_fn; Miri verifies no leak and no double free.
    let (pool, _) = pool();
    for i in 0..10 {
        let a: Vec<u64> = pool.acquire(16 + i);
        let b: Vec<u8> = pool.acquire(100);
        pool.release(a);
        pool.release(b);
    }
    assert!(pool.held_bytes() > 0);
    drop(pool);
}

#[test]
fn retention_bound_drops_instead_of_parking() {
    // A buffer past the 16 MiB per-shard retention bound is freed on
    // release rather than parked — the free goes through the normal Vec
    // drop (not drop_fn), and the pool must stay consistent afterwards.
    let (pool, stats) = pool();
    let huge: Vec<u64> = pool.acquire((17 << 20) / 8);
    pool.release(huge);
    let parked_after_huge = pool.held_bytes();
    // Whichever shard it hit, the huge allocation itself cannot be parked.
    assert!(parked_after_huge < 17 << 20);
    let small: Vec<u64> = pool.acquire(4);
    pool.release(small);
    assert!(pool.held_bytes() >= 32);
    assert!(stats.exchange.summary().chunks_recycled >= 1);
    drop(pool);
}

#[test]
fn zero_sized_and_zero_capacity_paths() {
    let (pool, _) = pool();
    // ZST element type: never pooled, never touches RawChunk.
    let units: Vec<()> = pool.acquire(128);
    assert!(units.capacity() >= 128);
    pool.release(units);
    // Zero-capacity buffer: released without entering the free lists.
    pool.release::<u64>(Vec::new());
    assert_eq!(pool.held_bytes(), 0);
}
