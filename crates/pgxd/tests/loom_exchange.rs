//! Loom model checking for the overlapped-exchange protocol shape
//! (§IV-C "send while receiving").
//!
//! Compiled only under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p pgxd --release --test loom_exchange
//! ```
//!
//! The real fabric runs on crossbeam channels, which loom cannot model, so
//! this test drives a miniature single-destination fabric built from
//! [`pgxd::sync`]'s `Mutex`/`Condvar` — the same primitives the chunk pool
//! and checker ledger use. The protocol under test is the exchange's
//! essential concurrency: a sender thread acquiring chunk backing stores
//! from a shared [`ChunkPool`] and publishing offset-addressed chunks,
//! while the receiving thread concurrently drains them, writes each into
//! its slot of a preallocated output, and releases the backing store to
//! the same pool. Every interleaving must produce the identity
//! permutation, write each output slot exactly once, and return every
//! allocation to the pool.

#![cfg(loom)]

use pgxd::metrics::CommStats;
use pgxd::pool::ChunkPool;
use pgxd::sync::{thread, Arc, Condvar, Mutex};
use std::collections::VecDeque;

/// Offset-addressed chunks in flight plus the sender's done flag.
type Mailbox = (VecDeque<(usize, Vec<u64>)>, bool);

/// One-destination mailbox guarded by the shim's mutex/condvar.
struct MiniFabric {
    q: Mutex<Mailbox>,
    cv: Condvar,
}

impl MiniFabric {
    fn new() -> Self {
        MiniFabric {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn send(&self, offset: usize, chunk: Vec<u64>) {
        self.q.lock().0.push_back((offset, chunk));
        self.cv.notify_one();
    }

    fn finish_sending(&self) {
        self.q.lock().1 = true;
        self.cv.notify_one();
    }

    /// Blocks for the next chunk; `None` once the sender finished and the
    /// queue drained.
    fn recv(&self) -> Option<(usize, Vec<u64>)> {
        let mut guard = self.q.lock();
        loop {
            if let Some(item) = guard.0.pop_front() {
                return Some(item);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard);
        }
    }
}

const CHUNK: usize = 2;
const CHUNKS: usize = 2;
const TOTAL: usize = CHUNK * CHUNKS;

#[test]
fn send_while_receiving_round() {
    loom::model(|| {
        let stats = std::sync::Arc::new(CommStats::default());
        let pool = Arc::new(ChunkPool::new(stats.clone()));
        let fabric = Arc::new(MiniFabric::new());

        let sender = {
            let pool = pool.clone();
            let fabric = fabric.clone();
            thread::spawn(move || {
                for c in 0..CHUNKS {
                    let mut chunk: Vec<u64> = pool.acquire(CHUNK);
                    let base = c * CHUNK;
                    chunk.extend((base..base + CHUNK).map(|v| v as u64));
                    fabric.send(base, chunk);
                }
                fabric.finish_sending();
            })
        };

        // Receive concurrently: place each chunk at its offset, count the
        // writes per slot, recycle the backing store.
        let mut out = [0u64; TOTAL];
        let mut writes = [0usize; TOTAL];
        while let Some((offset, chunk)) = fabric.recv() {
            for (i, v) in chunk.iter().enumerate() {
                out[offset + i] = *v;
                writes[offset + i] += 1;
            }
            pool.release(chunk);
        }
        sender.join().unwrap();

        // Interleaving-independent invariants: exact tiling (each slot
        // written exactly once), identity permutation, and every allocation
        // back in the pool (held = chunk bytes × misses).
        assert!(writes.iter().all(|&n| n == 1), "offset tiling violated");
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
        let ex = stats.exchange.summary();
        assert_eq!(ex.chunks_recycled as usize, CHUNKS);
        assert_eq!(
            pool.held_bytes(),
            CHUNK * std::mem::size_of::<u64>() * ex.pool_misses as usize
        );
    });
}
