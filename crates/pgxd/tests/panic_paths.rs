//! Panic-propagation paths through the cluster runtime.
//!
//! A machine thread can die three ways: a plain `panic!` (string payload),
//! a `panic_any` with a typed payload, or an injected fault. Each must
//! surface with its payload intact — `run` re-panics strings with context
//! and `resume_unwind`s typed payloads; `try_run` converts everything into
//! a structured [`RunError`] — and survivors blocked mid-exchange must be
//! released, with the protocol checker standing down rather than
//! reporting bogus custody leaks on the teardown path.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::RunErrorKind;

/// A typed panic payload that must cross the machine-thread boundary
/// without being flattened into a string.
#[derive(Debug, PartialEq)]
struct TypedFailure {
    code: u32,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
}

#[test]
fn string_panic_reraised_with_machine_context() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.run(|ctx| {
            if ctx.id() == 2 {
                panic!("boom on purpose");
            }
            ctx.barrier();
        })
    }));
    let payload = result.expect_err("run must propagate the panic");
    let msg = panic_message(payload.as_ref()).expect("string payload expected");
    assert!(msg.contains("machine thread panicked"), "{msg}");
    assert!(msg.contains("boom on purpose"), "{msg}");
}

#[test]
fn typed_panic_payload_survives_resume_unwind() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.run(|ctx| {
            if ctx.id() == 0 {
                std::panic::panic_any(TypedFailure { code: 42 });
            }
            ctx.barrier();
        })
    }));
    let payload = result.expect_err("run must propagate the panic");
    let typed = payload
        .downcast_ref::<TypedFailure>()
        .expect("typed payload must not be flattened to a string");
    assert_eq!(typed, &TypedFailure { code: 42 });
}

#[test]
fn try_run_reports_string_panic_as_machine_panic() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() == 1 {
                panic!("structured boom");
            }
            ctx.barrier();
        })
        .expect_err("try_run must fail");
    assert_eq!(err.kind, RunErrorKind::MachinePanic);
    assert_eq!(err.machine, Some(1));
    assert!(err.message.contains("structured boom"), "{}", err.message);
}

#[test]
fn try_run_reports_typed_panic_without_losing_the_run() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() == 1 {
                std::panic::panic_any(TypedFailure { code: 7 });
            }
            ctx.barrier();
        })
        .expect_err("try_run must fail");
    assert_eq!(err.kind, RunErrorKind::MachinePanic);
    assert_eq!(err.machine, Some(1));
    assert!(err.message.contains("non-string panic payload"), "{}", err.message);
}

#[test]
fn panic_mid_exchange_releases_blocked_survivors() {
    // Machine 0 dies before contributing its exchange counts; machines 1
    // and 2 are blocked in the count phase waiting on it. The abort path
    // must wake them (sympathetic unwind), the primary failure must stay
    // machine 0, and the checker — active in debug builds with packets
    // legitimately in flight — must stand down instead of panicking about
    // custody leaks during the surviving teardown. The test completing at
    // all is the custody-leak assertion.
    let p = 3;
    let shards: Vec<Vec<u64>> = (0..p)
        .map(|m| (0..500u64).map(|i| i * 2 + m as u64).collect())
        .collect();
    let cluster = Cluster::new(ClusterConfig::new(p).buffer_bytes(64).workers_per_machine(2));
    let shards_ref = &shards;
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() == 0 {
                panic!("died mid-step");
            }
            let data = shards_ref[ctx.id()].clone();
            let n = data.len();
            let offsets: Vec<usize> =
                (0..=ctx.num_machines()).map(|d| d * n / ctx.num_machines()).collect();
            ctx.exchange_by_offsets(&data, &offsets)
        })
        .expect_err("dead machine must fail the run");
    assert_eq!(err.kind, RunErrorKind::MachinePanic);
    assert_eq!(err.machine, Some(0), "primary failure must be the real panic");
    assert!(err.message.contains("died mid-step"), "{}", err.message);
    assert!(err.peer_aborts >= 1, "survivors must unwind sympathetically");
    if cfg!(debug_assertions) {
        let residual = err.residual.expect("checker active in debug builds");
        // Machines 1 and 2 had sent count packets to the dead machine;
        // the abort teardown reports them as residue instead of leaking.
        let _ = residual.in_flight_packets + residual.live_chunks + residual.parked_chunks;
    }
}

#[test]
fn all_sympathetic_failures_still_produce_an_error() {
    // If every failure is a PeerAborted (can happen when the primary
    // payload is consumed by an outer catch), try_run must still return a
    // structured error rather than panic. Simulate by having two machines
    // both panic — the first in machine order becomes primary.
    let cluster = Cluster::new(ClusterConfig::new(4));
    let err = cluster
        .try_run(|ctx| {
            if ctx.id() >= 2 {
                panic!("double fault {}", ctx.id());
            }
            ctx.barrier();
        })
        .expect_err("must fail");
    assert_eq!(err.kind, RunErrorKind::MachinePanic);
    assert_eq!(err.machine, Some(2), "first real failure in machine order wins");
}
