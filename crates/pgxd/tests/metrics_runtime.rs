//! Integration tests for the always-on metrics plane on real cluster
//! runs: the registry must agree *exactly* with the legacy
//! [`CommSummary`]/[`ExchangeSummary`] accounting (they share cells, so
//! any drift is a wiring bug), step histograms must see one sample per
//! machine, the health monitor must name a deterministic straggler and
//! the step it lagged in, and both exporters must produce well-formed
//! output from a run that actually moved data — including under a chaos
//! fault plan, where redelivered and dropped traffic must not double- or
//! under-count.

use std::time::Duration;

use pgxd::cluster::{Cluster, ClusterConfig, RunReport};
use pgxd::{FaultPlan, HealthConfig};

/// One §IV-shaped all-to-all: every machine scatters an equal share of a
/// deterministic keyset to every destination through
/// `exchange_by_offsets`, inside a named step so the step histogram and
/// the straggler detector both see it. Returns the number of keys each
/// machine received.
fn all_to_all(config: ClusterConfig) -> RunReport<usize> {
    let cluster = Cluster::new(config);
    cluster.run(move |ctx| {
        let p = ctx.num_machines();
        let n = 4096 * p;
        let data: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(17) ^ ctx.id() as u64)
            .collect();
        let per = n / p;
        let mut offsets: Vec<usize> = (0..p).map(|d| d * per).collect();
        offsets.push(n);
        let (received, bounds) = ctx.step("xchg", |c| c.exchange_by_offsets(&data, &offsets));
        assert_eq!(bounds.len(), p + 1);
        ctx.barrier();
        received.len()
    })
}

/// The registry and the summary structs must agree field-for-field —
/// they are views of the same atomic cells, so this pins the
/// registration wiring (names, no double counting) rather than the
/// arithmetic.
fn assert_registry_mirrors_summaries(report: &RunReport<usize>) {
    let m = &report.metrics;
    let comm = &report.comm;
    assert_eq!(
        m.counter("pgxd_comm_bytes_sent_total"),
        Some(comm.bytes_sent),
        "registry bytes_sent must equal CommSummary"
    );
    assert_eq!(m.counter("pgxd_comm_messages_total"), Some(comm.messages_sent));
    assert_eq!(
        m.counter("pgxd_exchange_chunks_sent_total"),
        Some(comm.exchange.chunks_sent)
    );
    assert_eq!(
        m.counter("pgxd_exchange_chunks_recycled_total"),
        Some(comm.exchange.chunks_recycled)
    );
    assert_eq!(m.counter("pgxd_pool_hits_total"), Some(comm.exchange.pool_hits));
    assert_eq!(m.counter("pgxd_pool_misses_total"), Some(comm.exchange.pool_misses));
    assert_eq!(
        m.counter("pgxd_exchange_bytes_placed_total"),
        Some(comm.exchange.bytes_placed)
    );

    // Per-destination accounting must balance against the aggregate and
    // against the RunReport's per_dst view, one label per machine.
    let dsts: Vec<(&str, u64)> = m.counters_of_family("pgxd_comm_dst_bytes_total").collect();
    assert_eq!(dsts.len(), report.results.len(), "one dst label per machine");
    let dst_sum: u64 = dsts.iter().map(|(_, v)| *v).sum();
    assert_eq!(dst_sum, comm.bytes_sent, "per-dst bytes must balance bytes_sent");
    assert_eq!(report.per_dst_bytes.iter().sum::<u64>(), comm.bytes_sent);
    assert_eq!(report.per_dst_bytes.len(), report.results.len());
}

#[test]
fn registry_mirrors_comm_summary_on_clean_run() {
    let report = all_to_all(ClusterConfig::new(4));
    let total: usize = report.results.iter().sum();
    assert_eq!(total, 4 * 4096 * 4, "all-to-all must conserve keys");
    assert!(report.comm.bytes_sent > 0, "the run must have moved data");
    assert_registry_mirrors_summaries(&report);
}

#[test]
fn registry_mirrors_comm_summary_under_chaos() {
    // Chaos redelivers, reorders, and drops traffic; the shared-cell
    // design means the registry still equals the summary exactly.
    let report = all_to_all(ClusterConfig::new(4).fault(FaultPlan::chaos(29)));
    let total: usize = report.results.iter().sum();
    assert_eq!(total, 4 * 4096 * 4, "chaos must not lose keys");
    assert_registry_mirrors_summaries(&report);
    assert!(
        report.metrics.counter("pgxd_fault_delays_total").unwrap_or(0) > 0,
        "chaos plan should have fired at least one delay"
    );
}

#[test]
fn step_histogram_counts_one_sample_per_machine() {
    let report = all_to_all(ClusterConfig::new(4));
    let h = report
        .metrics
        .histogram("pgxd_step_ns{step=\"xchg\"}")
        .expect("step() must register a per-step histogram");
    assert_eq!(h.count, 4, "one sample per machine");
    let exact_max = report.steps.max_across_machines("xchg").as_nanos() as u64;
    assert_eq!(h.max, exact_max, "histogram max is exact, not bucketed");
    // The log2-bucketed p95 may only sit above the exact nearest-rank
    // view (bucket upper bound), clamped to the observed max.
    let exact_p95 = report.steps.p95_across_machines("xchg").as_nanos() as u64;
    assert!(h.p95() >= exact_p95, "{} < {exact_p95}", h.p95());
    assert!(h.p95() <= h.max);
    let steps_total: u64 = report
        .metrics
        .counters_of_family("pgxd_steps_total")
        .map(|(_, v)| v)
        .sum();
    assert_eq!(steps_total, 4, "each machine's step counter fires once");
}

#[test]
fn health_monitor_names_straggler_and_stalled_step() {
    let config = ClusterConfig::new(4).health(
        HealthConfig::enabled()
            .interval(Duration::from_millis(2))
            .stall_after(Duration::from_millis(20))
            .straggler(2.0, Duration::from_millis(10)),
    );
    let report = Cluster::new(config).run(|ctx| {
        ctx.step("work", |c| {
            // Machine 2 is sabotaged: 120ms against a 2ms median, far
            // past both the 2x straggler ratio and the 20ms stall
            // window while its peers park at the barrier below.
            if c.id() == 2 {
                std::thread::sleep(Duration::from_millis(120));
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        ctx.barrier();
    });
    let health = report.health.expect("monitor was enabled");
    assert!(health.samples >= 1, "watchdog must have sampled");
    let straggler = health
        .stragglers()
        .find(|v| v.machine() == Some(2))
        .unwrap_or_else(|| panic!("no straggler verdict for machine 2:\n{health}"));
    assert_eq!(straggler.step(), Some("work"), "verdict must name the slow step");
    assert!(
        health.stalls().any(|v| v.machine() == Some(2)),
        "parked peers should expose machine 2 as the barrier holdout:\n{health}"
    );
    // The report doubles as a flight record: its snapshot and JSON view
    // carry the verdicts for offline triage.
    assert!(health.metrics.counter("pgxd_health_verdicts_total").unwrap_or(0) >= 2);
    let json = health.to_json();
    assert!(json.contains("\"kind\":\"straggler\""), "{json}");
    assert!(json.contains("\"schema\":\"pgxd-health/1\""), "{json}");
}

#[test]
fn disabled_monitor_attaches_no_report() {
    let report = all_to_all(ClusterConfig::new(2));
    assert!(report.health.is_none(), "health is strictly opt-in");
}

#[test]
fn run_error_carries_flight_record() {
    let config = ClusterConfig::new(4)
        .fault(
            FaultPlan::chaos(11)
                .kill(1, 3)
                .step_timeout(Duration::from_secs(20)),
        )
        .health(HealthConfig::enabled().interval(Duration::from_millis(2)));
    let cluster = Cluster::new(config);
    let err = cluster
        .try_run(|ctx| {
            let p = ctx.num_machines();
            let n = 1024 * p;
            let data: Vec<u64> = (0..n as u64).collect();
            let per = n / p;
            let mut offsets: Vec<usize> = (0..p).map(|d| d * per).collect();
            offsets.push(n);
            let (received, _) = ctx.step("xchg", |c| c.exchange_by_offsets(&data, &offsets));
            ctx.barrier();
            received.len()
        })
        .expect_err("the kill plan must abort the run");
    let health = err.health.as_ref().expect("aborts still attach the flight record");
    assert!(
        health.metrics.counter("pgxd_fault_kills_total").unwrap_or(0) >= 1,
        "the pre-abort snapshot must show the kill that caused it"
    );
}

#[test]
fn exporters_are_wellformed_from_real_run() {
    let report = all_to_all(ClusterConfig::new(3));
    let prom = report.metrics.to_prometheus_text();
    assert!(prom.contains("# TYPE pgxd_comm_bytes_sent_total counter"), "{prom}");
    assert!(prom.contains("pgxd_comm_dst_bytes_total{dst=\"0\"}"), "{prom}");
    assert!(prom.contains("# TYPE pgxd_step_ns histogram"), "{prom}");
    assert!(prom.contains("le=\"+Inf\""), "{prom}");
    let json = report.metrics.to_json();
    assert!(json.starts_with("{\"schema\":\"pgxd-metrics/1\""), "{json}");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "JSON braces must balance"
    );
}
