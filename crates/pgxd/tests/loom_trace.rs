//! Loom model checking for [`pgxd::trace::TraceRing`].
//!
//! Compiled only under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p pgxd --release --test loom_trace
//! ```
//!
//! The ring is the one lock-free structure tracing adds, and its seqlock
//! slot protocol (CAS-claimed odd/even versions, Release payload stores)
//! is exactly the kind of ordering argument loom exists to check. The
//! models assert interleaving-independent invariants: no drained event is
//! ever torn (its payload words always agree), accounting never loses an
//! emission, and a drain racing an emit only ever misses events — it
//! never invents or corrupts one.

#![cfg(loom)]

use pgxd::sync::{thread, Arc};
use pgxd::trace::{EventKind, TraceEvent, TraceRing};

/// An event whose payload words are entangled (`b == 1000 - a`), so any
/// torn read — half one write, half another — breaks the relation.
fn ev(a: u64) -> TraceEvent {
    TraceEvent {
        t_ns: a,
        dur_ns: 0,
        machine: 0,
        lane: 0,
        kind: EventKind::ChunkSend,
        a,
        b: 1000 - a,
    }
}

fn assert_coherent(events: &[TraceEvent]) {
    for e in events {
        assert_eq!(e.b, 1000 - e.a, "torn event: a={} b={}", e.a, e.b);
    }
}

/// Two writers race into a two-slot ring: every schedule must drain
/// coherent events and account for both emissions.
#[test]
fn two_racing_emitters_never_tear() {
    loom::model(|| {
        let ring = Arc::new(TraceRing::new(2));
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                let ring = ring.clone();
                thread::spawn(move || ring.emit(ev(i)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.emitted, 2);
        assert_coherent(&drained.events);
        assert_eq!(drained.events.len() as u64 + drained.dropped(), 2);
    });
}

/// A drain racing a concurrent emit: the drain may miss the in-flight
/// event (counted as dropped for that snapshot) but must never surface a
/// torn or phantom one.
#[test]
fn drain_racing_emit_is_coherent() {
    loom::model(|| {
        let ring = Arc::new(TraceRing::new(2));
        ring.emit(ev(7));
        let writer = {
            let ring = ring.clone();
            thread::spawn(move || ring.emit(ev(8)))
        };
        let drained = ring.drain();
        assert_coherent(&drained.events);
        // The pre-existing event is stable; the racing one may or may not
        // be visible. Nothing else can appear.
        assert!(drained.events.len() <= 2);
        assert!(drained.events.iter().any(|e| e.a == 7) || drained.dropped() > 0);
        writer.join().unwrap();
        // Once quiescent, everything emitted is accounted for.
        let settled = ring.drain();
        assert_eq!(settled.emitted, 2);
        assert_coherent(&settled.events);
        assert_eq!(settled.events.len(), 2);
    });
}

/// Overflow under contention: three emissions race into a one-slot ring.
/// Whatever the schedule, exactly one coherent event survives and the
/// other two are counted dropped.
#[test]
fn contended_overflow_keeps_newest_and_counts_drops() {
    loom::model(|| {
        let ring = Arc::new(TraceRing::new(1));
        ring.emit(ev(1));
        let handles: Vec<_> = (2..4u64)
            .map(|i| {
                let ring = ring.clone();
                thread::spawn(move || ring.emit(ev(i)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.emitted, 3);
        assert_coherent(&drained.events);
        assert!(drained.events.len() <= 1);
        assert_eq!(drained.dropped(), 3 - drained.events.len() as u64);
    });
}
