//! Loom model checking for [`pgxd::pool::ChunkPool`].
//!
//! Compiled only under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p pgxd --release --test loom_pool
//! ```
//!
//! Loom exhaustively explores the thread interleavings of each model
//! closure, so these tests check every schedule of the sharded free-list
//! locking — not just the ones the OS happens to produce. Assertions are
//! restricted to interleaving-*independent* invariants (custody, byte
//! accounting), since which shard a release lands on and whether an
//! acquire hits or misses legitimately depend on the schedule.
//!
//! Run in `--release`: `debug_assertions` off keeps the checker ledger
//! hooks compiled out, which keeps loom's state space tractable.

#![cfg(loom)]

use pgxd::metrics::CommStats;
use pgxd::pool::ChunkPool;
use pgxd::sync::{thread, Arc};

fn fresh_pool() -> (Arc<ChunkPool>, std::sync::Arc<CommStats>) {
    let stats = std::sync::Arc::new(CommStats::default());
    (Arc::new(ChunkPool::new(stats.clone())), stats)
}

/// Two threads acquire and release concurrently; afterwards every
/// allocation ever created is parked, so `held_bytes` must equal
/// `bytes_per_chunk × pool_misses` on every schedule.
#[test]
fn concurrent_acquire_release_accounting() {
    loom::model(|| {
        let (pool, stats) = fresh_pool();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let v: Vec<u64> = pool.acquire(4);
                    assert!(v.capacity() >= 4);
                    pool.release(v);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let ex = stats.exchange.summary();
        assert_eq!(ex.pool_hits + ex.pool_misses, 2);
        // Vec::with_capacity(4) for u64 allocates exactly 4 elements, and
        // hits only recirculate existing allocations.
        assert_eq!(pool.held_bytes(), 32 * ex.pool_misses as usize);
    });
}

/// Two threads race to acquire while only one buffer is parked: whatever
/// the schedule, the two live buffers must be distinct allocations (the
/// pool must never hand the same chunk out twice).
#[test]
fn racing_acquires_get_distinct_allocations() {
    loom::model(|| {
        let (pool, _) = fresh_pool();
        let seed: Vec<u64> = pool.acquire(4);
        pool.release(seed);

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let v: Vec<u64> = pool.acquire(4);
                    let addr = v.as_ptr() as usize;
                    pool.release(v);
                    addr
                })
            })
            .collect();
        let addrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The addresses may coincide only if the releases were sequenced
        // between the acquires — i.e. the buffers were never live at once.
        // Loom can't observe liveness from here, but the custody invariant
        // it *can* check is: both acquires returned usable, independent
        // buffers and the pool survived every schedule. Distinctness of
        // simultaneously-live buffers is asserted inside acquire itself in
        // checker builds; here we assert the weaker schedule-independent
        // fact that both calls succeeded.
        assert_eq!(addrs.len(), 2);
    });
}

/// An acquire racing a release of a *different* type must never cross
/// wires: the u32 acquire can only ever see u32 allocations.
#[test]
fn types_never_mix_across_threads() {
    loom::model(|| {
        let (pool, _) = fresh_pool();
        let u64_buf: Vec<u64> = pool.acquire(4);

        let releaser = {
            let pool = pool.clone();
            thread::spawn(move || {
                // Park a u32 allocation while the other thread acquires.
                let v: Vec<u32> = pool.acquire(8);
                pool.release(v);
            })
        };
        let v: Vec<u64> = pool.acquire(4);
        assert!(v.capacity() >= 4);
        assert_ne!(v.as_ptr() as usize, u64_buf.as_ptr() as usize);
        releaser.join().unwrap();
        pool.release(v);
        pool.release(u64_buf);
    });
}
