//! Integration tests proving each protocol-checker diagnostic actually
//! fires — an undelivered packet, a double-released chunk, and a
//! malformed offset tiling each produce their documented panic.
//!
//! Compiled only when the checker hooks are (debug builds or the
//! `checker` feature); in a plain `--release` test sweep the whole file
//! vanishes rather than failing its `#[should_panic]` expectations.

#![cfg(any(debug_assertions, feature = "checker"))]

use pgxd::checker::{OffsetLedger, ProtocolChecker};
use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::comm::Tag;

#[test]
fn clean_run_passes_barriers_and_teardown() {
    // Balanced traffic must sail through the barrier quiescence check and
    // the teardown check without a false positive.
    let cluster = Cluster::new(ClusterConfig::new(3));
    let report = cluster.run(|ctx| {
        let gathered = ctx.all_gather(vec![ctx.id() as u64]);
        ctx.barrier();
        let (out, _) = ctx.exchange_by_offsets(&[ctx.id() as u64; 6], &[0, 2, 4, 6]);
        ctx.barrier();
        (gathered, out)
    });
    assert_eq!(report.results.len(), 3);
}

#[test]
#[should_panic(expected = "undelivered packet")]
fn undelivered_packet_reported_at_teardown() {
    // Machine 0 sends a packet nobody ever receives; every machine exits
    // normally, and the teardown sweep on the calling thread reports it.
    let cluster = Cluster::new(ClusterConfig::new(2));
    let _ = cluster.run(|ctx| {
        if ctx.id() == 0 {
            ctx.comm_mut().send_vec(1, Tag::user(7, 7), vec![1u64, 2, 3]);
        }
    });
}

#[test]
#[should_panic(expected = "undelivered packet(s) at barrier")]
fn undelivered_packet_reported_at_barrier() {
    // The same stray send is caught earlier if the fabric hits a barrier:
    // all machines are parked between the two waits, so the ledger scan is
    // race-free and every machine panics on the shared verdict.
    let cluster = Cluster::new(ClusterConfig::new(2));
    let _ = cluster.run(|ctx| {
        if ctx.id() == 0 {
            ctx.comm_mut().send_vec(1, Tag::user(7, 8), vec![9u64]);
        }
        ctx.barrier();
    });
}

#[test]
#[should_panic(expected = "double-released chunk")]
fn double_released_chunk_reported() {
    let checker = ProtocolChecker::new(1);
    checker.chunk_acquired(0, 0xdead0, 64);
    checker.chunk_released(0, 0xdead0, 64, true);
    // Second release of the same parked allocation: the diagnostic the
    // custody ledger exists for.
    checker.chunk_released(0, 0xdead0, 64, true);
}

#[test]
#[should_panic(expected = "overlapping offset range")]
fn overlapping_offset_ranges_reported() {
    let mut ledger = OffsetLedger::new(1, Tag::user(0, 3), 10);
    ledger.record(0, 6);
    ledger.record(4, 6); // [4, 10) overlaps [0, 6)
    ledger.finish();
}

#[test]
#[should_panic(expected = "gap in offset ranges")]
fn offset_gap_reported() {
    let mut ledger = OffsetLedger::new(0, Tag::user(0, 4), 10);
    ledger.record(0, 4);
    ledger.record(7, 3); // [4, 7) never written
    ledger.finish();
}

#[test]
#[should_panic(expected = "never sent")]
fn tag_mismatch_delivery_reported() {
    let checker = ProtocolChecker::new(2);
    checker.packet_sent(0, 1, Tag::user(1, 1));
    // Delivery under a different tag than anything in flight.
    checker.packet_delivered(0, 1, Tag::user(1, 2));
}
