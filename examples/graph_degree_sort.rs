//! Graph-flavoured usage (the paper's motivating scenario): generate a
//! power-law graph, load it through the data manager's partitioning path
//! (contiguous vertex ownership, ghost-node selection, edge chunking —
//! §III), and sort vertices by degree with provenance — then read off the
//! top hubs, tracing each sorted entry back to its vertex.
//!
//! ```text
//! cargo run --release --example graph_degree_sort
//! ```

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd::partition::{crossing_edges_without_ghosts, partition_graph, PartitionConfig};
use pgxd_core::DistSorter;
use pgxd_datagen::rmat::{rmat_edges, RmatConfig};

fn main() {
    let machines = 4;
    let config = RmatConfig::new(15, 8, 7); // 32k vertices, 256k edges
    let num_v = config.num_vertices();

    // Load the graph the PGX.D way: partition it across machines with
    // ghost-node selection and edge chunking.
    let edges = rmat_edges(&config);
    let partitions = partition_graph(num_v, &edges, &PartitionConfig::new(machines));

    let naive_crossing = crossing_edges_without_ghosts(num_v, &edges, machines);
    let ghosted_crossing: usize = partitions.iter().map(|p| p.crossing_edges).sum();
    println!(
        "R-MAT graph: {num_v} vertices, {} edges across {machines} machines",
        edges.len()
    );
    println!(
        "ghost-node selection: {} ghosts cut crossing edges {naive_crossing} -> {ghosted_crossing} \
         ({:.1}% reduction)",
        partitions[0].ghosts.len(),
        100.0 * (1.0 - ghosted_crossing as f64 / naive_crossing.max(1) as f64)
    );
    println!(
        "edge chunking: machine 0 scheduled {} chunks of <= 4096 edges",
        partitions[0].chunks.len()
    );

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let partitions_ref = &partitions;

    let report = cluster.run(|ctx| {
        // Each machine extracts the out-degrees of its owned vertices from
        // its local CSR — the "sort data of their multiple graphs" use case.
        let part = &partitions_ref[ctx.id()];
        let degrees: Vec<u64> = part.csr.degrees();

        // Provenance-tracking sort: each output item remembers its origin
        // machine and local index, i.e. its vertex id.
        sorter.sort_keyed(ctx, &degrees).data
    });

    // The global top lives at the tail of the highest machines; walk the
    // concatenated output backwards for the 10 highest-degree vertices.
    let all: Vec<_> = report.results.iter().flatten().collect();
    println!("\ntop-10 hubs (degree, global vertex id):");
    for item in all.iter().rev().take(10) {
        let owner = &partitions[item.origin as usize];
        let vertex = owner.vertex_base + item.index as usize;
        println!("  degree {:>6} vertex {:>8}", item.key, vertex);
        assert_eq!(
            owner.csr.degree(item.index as usize) as u64,
            item.key,
            "provenance must resolve"
        );
    }

    assert_eq!(all.len(), num_v);
    println!("\nsorted {} vertex degrees in {:?}", all.len(), report.wall_time);
}
