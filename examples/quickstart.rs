//! Quickstart: sort 1M keys on a simulated 4-machine cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::{DistSorter, LoadStats, SortConfig};
use pgxd_datagen::{generate_partitioned, Distribution};

fn main() {
    let machines = 4;
    let n = 1_000_000;

    // Every machine starts with its own shard of the input.
    let shards = generate_partitioned(Distribution::Uniform, n, machines, 42);

    // A cluster is p machines, each with its own worker pool, connected by
    // a buffered message fabric (256 KiB request buffers, as in PGX.D).
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::new(SortConfig::default());

    // SPMD: the closure runs once per machine.
    let report = cluster.run(|ctx| {
        let local = shards[ctx.id()].clone();
        let part = sorter.sort(ctx, local);
        (part.len(), part.range().map(|(lo, hi)| (*lo, *hi)))
    });

    println!("sorted {n} keys across {machines} machines in {:?}", report.wall_time);
    println!(
        "communication: {} bytes in {} messages (modeled wire time {:?})",
        report.comm.bytes_sent, report.comm.messages_sent, report.comm.modeled_wire_time
    );

    let loads = LoadStats::new(report.results.iter().map(|r| r.0).collect());
    println!("\nper-machine load:");
    for (m, (count, range)) in report.results.iter().enumerate() {
        let (lo, hi) = range.expect("non-empty machine");
        println!(
            "  machine {m}: {count} keys ({:.3}% of total), range [{lo}, {hi}]",
            loads.shares()[m] * 100.0
        );
    }
    println!("\nimbalance factor: {:.4} (1.0 = perfect)", loads.imbalance_factor());

    println!("\nstep breakdown (max across machines):");
    for step in pgxd_core::steps::ALL {
        println!("  {:<12} {:?}", step, report.steps.max_across_machines(step));
    }
}
