//! The paper's headline scenario: sorting data with many duplicated
//! entries. Runs the same exponential workload with the investigator on
//! and off to show the load-balance difference (Fig. 3b vs Fig. 3c).
//!
//! ```text
//! cargo run --release --example duplicate_heavy
//! ```

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::{DistSorter, LoadStats, SortConfig};
use pgxd_datagen::{generate_partitioned, Distribution};

fn run(investigator: bool, shards: &[Vec<u64>], machines: usize) -> LoadStats {
    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::new(SortConfig::default().investigator(investigator));
    let report = cluster.run(|ctx| {
        let local = shards[ctx.id()].clone();
        sorter.sort(ctx, local).len()
    });
    LoadStats::new(report.results)
}

fn main() {
    let machines = 8;
    let n = 800_000;
    let shards = generate_partitioned(Distribution::Exponential, n, machines, 123);

    let distinct: std::collections::HashSet<u64> = shards.iter().flatten().copied().collect();
    println!(
        "exponential workload: {n} keys, only {} distinct values ({:.1}x duplication)",
        distinct.len(),
        n as f64 / distinct.len() as f64
    );

    for investigator in [false, true] {
        let stats = run(investigator, &shards, machines);
        println!(
            "\ninvestigator {}:",
            if investigator { "ON  (Fig. 3c)" } else { "OFF (Fig. 3b, naive sample sort)" }
        );
        print!("  per-machine loads:");
        for c in &stats.counts {
            print!(" {c}");
        }
        println!();
        println!(
            "  min {} / max {} — load difference {}, imbalance factor {:.2}",
            stats.min(),
            stats.max(),
            stats.load_difference(),
            stats.imbalance_factor()
        );
    }
    println!(
        "\nThe investigator divides each duplicated splitter's equal-key range evenly\n\
         across the destinations it spans, so duplication no longer collapses the load."
    );
}
