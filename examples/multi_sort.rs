//! The generic-API tour: sorting records by an extracted key, descending
//! order, key/payload pairs, and the post-sort analytics (quantiles,
//! histogram) — the "high-level API exposed to the user, which is generic
//! and works with any data type and is able to sort different data
//! simultaneously" of §VI.
//!
//! ```text
//! cargo run --release --example multi_sort
//! ```

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::api::{global_histogram, global_quantiles};
use pgxd_core::DistSorter;
use pgxd_datagen::{generate_partitioned, Distribution};

/// An application record: not `Ord` itself (it has a float), sorted by
/// whichever field the caller extracts.
#[derive(Clone, Copy, Debug)]
struct Event {
    timestamp: u64,
    device: u32,
    reading: f32,
}

fn main() {
    let machines = 4;
    let n = 200_000;
    let ts = generate_partitioned(Distribution::Exponential, n, machines, 99);

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();
    let ts_ref = &ts;

    let report = cluster.run(|ctx| {
        let events: Vec<Event> = ts_ref[ctx.id()]
            .iter()
            .enumerate()
            .map(|(i, &t)| Event {
                timestamp: t,
                device: (ctx.id() * 1000 + i) as u32,
                reading: (t % 360) as f32,
            })
            .collect();

        // 1. Sort whole records by timestamp (records carry a float — no
        //    Ord needed on the payload).
        let by_time = sorter.sort_records(ctx, events.clone(), |e| e.timestamp);

        // 2. Same keys descending (largest timestamps on machine 0).
        let newest_first =
            sorter.sort_descending(ctx, events.iter().map(|e| e.timestamp).collect());

        // 3. Key/payload pairs: timestamp plus device id travel together.
        let pairs: Vec<(u64, u32)> = events.iter().map(|e| (e.timestamp, e.device)).collect();
        let keyed = sorter.sort_pairs(ctx, pairs);

        // 4. Two *different* datasets sorted simultaneously through one
        //    shared set of collectives (§VI: "sort different data
        //    simultaneously").
        let timestamps: Vec<u64> = events.iter().map(|e| e.timestamp).collect();
        let devices: Vec<u64> = events.iter().map(|e| e.device as u64).collect();
        let mut batch = sorter.sort_batch(ctx, vec![timestamps.clone(), devices]);
        let devices_sorted = batch.pop().unwrap();
        let plain = batch.pop().unwrap();
        assert!(pgxd_core::api::verify_globally_sorted(ctx, &plain));
        assert!(pgxd_core::api::verify_globally_sorted(ctx, &devices_sorted));

        // 5. Post-sort analytics on the primary order.
        let quartiles = global_quantiles(ctx, &plain, 4);
        let hist = global_histogram(ctx, &plain, 0, 30_000, 10);

        // Payload fields stay attached through the exchange.
        let earliest_reading = by_time.data.first().map(|(k, e)| {
            assert_eq!(e.reading, (k % 360) as f32);
            e.reading
        });

        (
            by_time.len(),
            newest_first.data.first().copied(),
            keyed.len(),
            quartiles,
            hist,
            earliest_reading,
        )
    });

    let (first_len, newest_head, keyed_len, quartiles, hist, earliest_reading) =
        &report.results[0];
    let total: usize = report.results.iter().map(|r| r.0).sum();
    assert_eq!(total, n);
    let _ = (first_len, keyed_len);

    println!("sorted {n} telemetry events three ways on {machines} machines");
    println!(
        "earliest event's sensor reading (rode along with its key): {:?}",
        earliest_reading.unwrap()
    );
    println!(
        "descending head (largest timestamp, machine 0): {:?}",
        newest_head.unwrap()
    );
    println!("timestamp quartiles: {quartiles:?}");
    println!("histogram over [0, 30000) in 10 buckets:");
    let max = *hist.iter().max().unwrap() as f64;
    for (b, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((40.0 * count as f64 / max) as usize);
        println!("  [{:>5}..{:>5}) {:>7}  {bar}", b * 3000, (b + 1) * 3000, count);
    }
}
