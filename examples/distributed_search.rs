//! The query API on top of a finished sort: distributed binary search
//! (global rank of a key), point location, and top-k / bottom-k — the
//! "retrieving top values ... or implementing binary search on the sorted
//! data" capabilities §III promises.
//!
//! ```text
//! cargo run --release --example distributed_search
//! ```

use pgxd::cluster::{Cluster, ClusterConfig};
use pgxd_core::api::{bottom_k, global_rank, top_k, GlobalIndex};
use pgxd_core::DistSorter;
use pgxd_datagen::{generate_partitioned, Distribution};

fn main() {
    let machines = 4;
    let n = 500_000;
    let shards = generate_partitioned(Distribution::Normal, n, machines, 7);
    let probe: u64 = shards[0][0]; // some key that definitely exists

    let cluster = Cluster::new(ClusterConfig::new(machines).workers_per_machine(2));
    let sorter = DistSorter::default();

    let report = cluster.run(|ctx| {
        let part = sorter.sort(ctx, shards[ctx.id()].clone());

        // Replicated index: every machine learns all ranges and counts.
        let index = GlobalIndex::build(ctx, &part);
        let holders = index.machines_containing(&probe);

        // Exact global rank via one collective.
        let (rank_lo, rank_hi) = global_rank(ctx, &part, &probe);

        // Extremes (delivered on the master).
        let top = top_k(ctx, &part, 5);
        let bottom = bottom_k(ctx, &part, 5);

        (holders, rank_lo, rank_hi, top, bottom)
    });

    let (holders, rank_lo, rank_hi, top, bottom) = &report.results[0];
    println!("probe key {probe}:");
    println!("  held by machine(s) {holders:?}");
    println!("  global rank range [{rank_lo}, {rank_hi}) — {} duplicates", rank_hi - rank_lo);
    println!("  top-5 keys:    {:?}", top.as_ref().unwrap());
    println!("  bottom-5 keys: {:?}", bottom.as_ref().unwrap());

    // Verify against a flat sort.
    let mut flat: Vec<u64> = shards.concat();
    flat.sort_unstable();
    assert_eq!(*rank_lo, flat.partition_point(|&x| x < probe));
    assert_eq!(*rank_hi, flat.partition_point(|&x| x <= probe));
    println!("\nverified against a flat std sort of all {n} keys.");
}
